//! Controller configuration.

use crate::predictor::PredictorKind;
use serde::{Deserialize, Serialize};

/// Which autoscaling rule sizes each function's allocation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ScalerKind {
    /// The paper's model-driven rule: Algorithm 1 / the heterogeneous
    /// worst-case model (default).
    #[default]
    ModelDriven,
    /// A Knative-style heuristic baseline: provision
    /// `ceil(expected concurrency / target)` containers, where expected
    /// concurrency is `λ̂ × E[service time]` (Little's law). No queueing
    /// model, no tail-percentile awareness — the comparison quantifies
    /// what the paper's models buy.
    ConcurrencyTarget {
        /// Desired concurrent requests per container (Knative's
        /// `containerConcurrency`-style target).
        target: f64,
    },
}

/// Which resource-reclamation policy handles overload (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReclamationPolicy {
    /// Terminate whole containers of over-allocated functions.
    Termination,
    /// Deflate containers in place, terminating only when deflation up to
    /// the threshold `tau` cannot reclaim enough (the paper's preferred
    /// policy; default).
    #[default]
    Deflation,
}

/// How the load balancer hands requests to containers (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// One shared FCFS queue per function, drained by whichever container
    /// frees first, with idle containers picked fastest-first (default).
    /// This matches the M/M/c discipline the models assume and how
    /// OpenWhisk's invokers actually pull buffered activations when a
    /// container frees.
    #[default]
    SharedQueue,
    /// Dispatch to an idle container (weighted round robin among idle
    /// ones) when one exists, otherwise WRR across all containers —
    /// requests bind to a container at arrival.
    IdleFirstWrr,
    /// Pure weighted round robin at arrival (a literal reading of the
    /// prototype's WRR; behaves like c independent M/M/1 queues under
    /// load — ablation A1 quantifies the gap).
    Wrr,
}

/// All controller knobs, with the paper's defaults.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(default)]
pub struct LassConfig {
    /// Reallocation epoch (seconds). "Epochs are relatively short … tens of
    /// seconds to a minute" (§3.3).
    pub epoch_secs: f64,
    /// Monitoring tick for the sliding windows (§5: every 5 seconds).
    pub monitor_interval_secs: f64,
    /// Long arrival-rate window (§5: 2 minutes).
    pub long_window_secs: f64,
    /// Short arrival-rate window (§5: 10 seconds).
    pub short_window_secs: f64,
    /// Burst factor: switch to the short window when its rate is this many
    /// times the long-window rate (§5: 2×).
    pub burst_factor: f64,
    /// EWMA weight on the most recent epoch (§3.3: "a high weight given to
    /// the most recent epoch").
    pub ewma_alpha: f64,
    /// Percentile the model drives Eq. 4 to (Algorithm 1 iterates "while
    /// P ≤ 0.99"). The *measured* SLO percentile (95% in §6.1) is looser,
    /// which gives the model its headroom.
    pub target_percentile: f64,
    /// Whether the SLO deadline applies to waiting time only (the paper's
    /// evaluation convention) or to waiting + a high service-time
    /// percentile (§3.1's `t = d − 1/μ_p99`).
    pub slo_on_waiting_only: bool,
    /// Maximum fraction of a container's standard CPU that deflation may
    /// reclaim (§4.2: conservatively τ = 30%).
    pub deflation_max: f64,
    /// Per-iteration deflation increment (§4.2: "in small increments").
    pub deflation_increment: f64,
    /// Reclamation policy under overload.
    pub reclamation: ReclamationPolicy,
    /// Request dispatch policy.
    pub dispatch: DispatchPolicy,
    /// Enable the model-driven autoscaler. Disabled for model-validation
    /// experiments that pin a fixed allocation (Fig. 3).
    pub autoscale: bool,
    /// Online-learner warm-up threshold (samples per deflation bucket).
    pub profiler_min_samples: usize,
    /// Solver safety cap on containers per function.
    pub max_containers_per_fn: u32,
    /// Hard limit on how long a request may sit in queues before the
    /// platform abandons it (§2.1: FaaS platforms impose hard time limits,
    /// 60–900 s commercially). `None` disables expiry.
    pub request_timeout_secs: Option<f64>,
    /// Arrival-rate predictor (§5: pluggable; default is the paper's
    /// dual-window scheme).
    pub predictor: PredictorKind,
    /// Failure injection: mean time between container crashes, per
    /// container (exponential). `None` (default) disables crashes. Crashed
    /// containers orphan their queued requests (re-dispatched, like the
    /// paper's termination "reruns") and are replaced by the next epoch's
    /// plan.
    pub container_mtbf_secs: Option<f64>,
    /// Autoscaling rule (default: the paper's queueing models).
    pub scaler: ScalerKind,
}

impl Default for LassConfig {
    fn default() -> Self {
        Self {
            epoch_secs: 10.0,
            monitor_interval_secs: 5.0,
            long_window_secs: 120.0,
            short_window_secs: 10.0,
            burst_factor: 2.0,
            ewma_alpha: 0.7,
            target_percentile: 0.99,
            slo_on_waiting_only: true,
            deflation_max: 0.30,
            deflation_increment: 0.05,
            reclamation: ReclamationPolicy::Deflation,
            dispatch: DispatchPolicy::SharedQueue,
            autoscale: true,
            profiler_min_samples: 50,
            max_containers_per_fn: 10_000,
            request_timeout_secs: Some(60.0),
            predictor: PredictorKind::BurstAware,
            container_mtbf_secs: None,
            scaler: ScalerKind::ModelDriven,
        }
    }
}

impl LassConfig {
    /// Validate invariants between knobs.
    pub fn validate(&self) -> Result<(), String> {
        if self.epoch_secs <= 0.0 || self.monitor_interval_secs <= 0.0 {
            return Err("epoch and monitor interval must be positive".into());
        }
        if self.monitor_interval_secs > self.epoch_secs {
            return Err("monitor interval must not exceed the epoch".into());
        }
        if !(0.0..1.0).contains(&self.deflation_max) {
            return Err("deflation_max must be in [0, 1)".into());
        }
        if self.deflation_increment <= 0.0 || self.deflation_increment > 1.0 {
            return Err("deflation_increment must be in (0, 1]".into());
        }
        if !(0.0..1.0).contains(&self.target_percentile) || self.target_percentile <= 0.0 {
            return Err("target_percentile must be in (0, 1)".into());
        }
        if self.ewma_alpha <= 0.0 || self.ewma_alpha > 1.0 {
            return Err("ewma_alpha must be in (0, 1]".into());
        }
        if self.short_window_secs > self.long_window_secs {
            return Err("short window must not exceed long window".into());
        }
        if let Some(t) = self.request_timeout_secs {
            if t <= 0.0 {
                return Err("request_timeout_secs must be positive".into());
            }
        }
        if let Some(m) = self.container_mtbf_secs {
            if m <= 0.0 {
                return Err("container_mtbf_secs must be positive".into());
            }
        }
        if let ScalerKind::ConcurrencyTarget { target } = self.scaler {
            if !(target > 0.0 && target.is_finite()) {
                return Err("concurrency target must be positive".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = LassConfig::default();
        assert_eq!(c.monitor_interval_secs, 5.0);
        assert_eq!(c.long_window_secs, 120.0);
        assert_eq!(c.short_window_secs, 10.0);
        assert_eq!(c.burst_factor, 2.0);
        assert_eq!(c.deflation_max, 0.30);
        assert_eq!(c.target_percentile, 0.99);
        assert_eq!(c.reclamation, ReclamationPolicy::Deflation);
        assert_eq!(c.dispatch, DispatchPolicy::SharedQueue);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = LassConfig::default();
        c.monitor_interval_secs = 30.0;
        c.epoch_secs = 10.0;
        assert!(c.validate().is_err());

        let mut c = LassConfig::default();
        c.deflation_max = 1.0;
        assert!(c.validate().is_err());

        let mut c = LassConfig::default();
        c.ewma_alpha = 0.0;
        assert!(c.validate().is_err());

        let mut c = LassConfig::default();
        c.short_window_secs = 300.0;
        assert!(c.validate().is_err());
    }
}
