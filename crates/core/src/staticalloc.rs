//! A deliberately simple third scheduler: **static allocation with
//! round-robin dispatch**.
//!
//! Each function gets a fixed pool of warm containers at `t = 0` (its
//! `initial_containers`, minimum one) and requests are dealt to the
//! pool's schedulable containers in strict rotation. No autoscaling, no
//! monitors, no reclamation — the policy exists to demonstrate that the
//! shared engine seam (`lass_simcore::engine::SchedulerPolicy`) supports
//! schedulers that share *nothing* with the LaSS controller, in roughly
//! a hundred lines, and to serve as the "provisioned-for-peak" baseline
//! in capacity experiments.

use crate::simulation::{FnReport, FunctionSetup, SimReport};
use lass_cluster::{Cluster, ContainerId, FnId, RequestId};
use lass_simcore::{
    run_simulation, EngineConfig, EngineOutcome, FunctionEntry, PolicyCtx, ReqId, SchedulerPolicy,
    SimDuration, SimTime, TimeSeries, TimeWeightedGauge,
};
use std::collections::{BTreeMap, HashMap};

/// Static-allocation round-robin simulation over a [`Cluster`].
pub struct StaticRrSimulation {
    cluster: Cluster,
    seed: u64,
    setups: Vec<FunctionSetup>,
}

impl StaticRrSimulation {
    /// Create a simulation over a cluster.
    pub fn new(cluster: Cluster, seed: u64) -> Self {
        Self {
            cluster,
            seed,
            setups: Vec::new(),
        }
    }

    /// Deploy a function; returns its id (assigned in registration order).
    /// `initial_containers` (minimum 1) fixes the pool size for the whole
    /// run; the other autoscaling-related setup fields are ignored.
    pub fn add_function(&mut self, setup: FunctionSetup) -> FnId {
        let id = FnId(self.setups.len() as u32);
        self.setups.push(setup);
        id
    }

    /// Run for `duration` seconds (defaults to the longest workload).
    pub fn run(self, duration_override: Option<f64>) -> SimReport {
        let duration = duration_override.unwrap_or_else(|| {
            self.setups
                .iter()
                .map(|s| s.workload.duration())
                .fold(0.0f64, f64::max)
        });
        assert!(duration > 0.0, "simulation needs a positive duration");
        let entries: Vec<FunctionEntry> = self
            .setups
            .iter()
            .map(|s| FunctionEntry {
                name: s.spec.name.clone(),
                slo_deadline: s.slo_deadline,
                process: s.workload.build(),
            })
            .collect();
        let engine_cfg = EngineConfig {
            seed: self.seed,
            rng_label_prefix: "static-".into(),
            duration_secs: duration,
            drain_secs: 120.0,
            stream_stats: false,
            parallel_sites: None,
        };
        let policy = StaticRrPolicy::new(self.cluster, self.setups);
        run_simulation(engine_cfg, entries, policy)
    }
}

struct Pool {
    /// The fixed container fleet, in creation order.
    containers: Vec<ContainerId>,
    /// Round-robin position.
    cursor: usize,
}

/// Policy events (completions only — nothing is ever re-planned).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Ev {
    Complete { cid: ContainerId, seq: u64 },
}

/// The static round-robin policy. Crate-visible so the federated
/// harness can instantiate one per topology site.
pub(crate) struct StaticRrPolicy {
    setups: Vec<FunctionSetup>,
    cluster: Cluster,
    pools: BTreeMap<FnId, Pool>,
    in_service: HashMap<ContainerId, (RequestId, u64, SimTime)>,
    next_seq: u64,
    util_gauge: TimeWeightedGauge,
    busy_cpu_seconds: f64,
    /// Containers lost to chaos bursts (nothing replaces them: the
    /// static pool permanently shrinks, as a no-autoscaler baseline
    /// honestly would).
    crashes: usize,
    /// Chaos brown-out service-speed factor (1.0 = nominal).
    service_scale: f64,
}

impl StaticRrPolicy {
    /// Provision each function's fixed warm pool (minimum one container)
    /// on `cluster` at `t = 0` and build the policy.
    pub(crate) fn new(mut cluster: Cluster, setups: Vec<FunctionSetup>) -> Self {
        let mut pools: BTreeMap<FnId, Pool> = BTreeMap::new();
        for (i, s) in setups.iter().enumerate() {
            let fn_id = FnId(i as u32);
            let want = s.initial_containers.max(1);
            let mut pool = Pool {
                containers: Vec::new(),
                cursor: 0,
            };
            for _ in 0..want {
                if let Ok(cid) = cluster.create_container_vec(
                    fn_id,
                    s.spec.standard_cpu,
                    s.spec.standard_demand(),
                    SimTime::ZERO,
                    SimTime::ZERO,
                ) {
                    cluster.mark_container_ready(cid);
                    pool.containers.push(cid);
                }
            }
            pools.insert(fn_id, pool);
        }
        Self {
            setups,
            cluster,
            pools,
            in_service: HashMap::new(),
            next_seq: 0,
            util_gauge: TimeWeightedGauge::new(SimTime::ZERO, 0.0),
            busy_cpu_seconds: 0.0,
            crashes: 0,
            service_scale: 1.0,
        }
    }
    fn dispatch(&mut self, ctx: &mut impl PolicyCtx<Ev>, rid: RequestId, f: FnId, now: SimTime) {
        let pool = self.pools.get_mut(&f).expect("known fn");
        let n = pool.containers.len();
        if n == 0 {
            // The cluster could not host a single container: the request
            // can never be served.
            ctx.lose(ReqId(rid.0));
            return;
        }
        let cid = pool.containers[pool.cursor % n];
        pool.cursor = (pool.cursor + 1) % n;
        self.cluster
            .container_mut(cid)
            .expect("static container")
            .enqueue(rid);
        self.try_start(ctx, cid, now);
    }

    fn try_start(&mut self, ctx: &mut impl PolicyCtx<Ev>, cid: ContainerId, now: SimTime) {
        let Some(c) = self.cluster.container(cid) else {
            return;
        };
        let fn_id = c.fn_id();
        let deflation = c.deflation_ratio();
        let Some(rid) = self.cluster.begin_service(cid, now) else {
            return;
        };
        let dur = self.setups[fn_id.0 as usize]
            .spec
            .service
            .sample(deflation, ctx.service_rng(fn_id.0))
            / self.service_scale;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.in_service.insert(cid, (rid, seq, now));
        ctx.schedule(
            now + SimDuration::from_secs_f64(dur),
            Ev::Complete { cid, seq },
        );
    }
}

impl lass_simcore::ContainerChaos for StaticRrPolicy {
    /// Chaos burst: terminate up to `count` live containers (lowest ids
    /// first — the pools are fixed, so the order is reproducible without
    /// a policy-side RNG). Orphans are re-dispatched over whatever pool
    /// remains; an emptied pool loses all future requests.
    fn crash_containers(&mut self, ctx: &mut impl PolicyCtx<Ev>, count: u32, now: SimTime) -> u32 {
        let mut victims = self.cluster.container_ids();
        victims.truncate(count as usize);
        let mut crashed = 0u32;
        for cid in victims {
            let Ok(term) = self.cluster.terminate_container(cid, now) else {
                continue;
            };
            crashed += 1;
            self.crashes += 1;
            self.in_service.remove(&cid);
            let f = term.container.fn_id();
            self.pools
                .get_mut(&f)
                .expect("known fn")
                .containers
                .retain(|&c| c != cid);
            for rid in term.orphans {
                if ctx.rerun(ReqId(rid.0)).is_some() {
                    self.dispatch(ctx, rid, f, now);
                }
            }
        }
        crashed
    }

    /// Brown-out absorption: scale every subsequent service draw by
    /// `1/factor` (1.0 restores nominal speed exactly).
    fn set_service_factor(&mut self, factor: f64) {
        self.service_scale = if factor.is_finite() && factor > 0.0 {
            factor.min(1.0)
        } else {
            1.0
        };
    }

    /// Per-dimension capacity/allocation census for vector telemetry
    /// and the planner router.
    fn resource_snapshot(&self) -> lass_simcore::ResourceSnapshot {
        let cap = self.cluster.total_capacity_vec();
        let used = self.cluster.total_used_vec();
        lass_simcore::ResourceSnapshot {
            cap: [
                f64::from(cap.cpu.0),
                f64::from(cap.mem.0),
                f64::from(cap.bandwidth.0),
            ],
            used: [
                f64::from(used.cpu.0),
                f64::from(used.mem.0),
                f64::from(used.bandwidth.0),
            ],
        }
    }

    /// Warm-container census for the affinity router: the function's
    /// booted fleet (cold-starting containers excluded).
    fn warm_containers(&self, fn_idx: u32) -> u64 {
        self.cluster.fn_warm_count(FnId(fn_idx))
    }
}

impl SchedulerPolicy for StaticRrPolicy {
    type Event = Ev;
    type Report = SimReport;

    fn on_start(&mut self, _ctx: &mut impl PolicyCtx<Ev>) {
        self.util_gauge
            .set(SimTime::ZERO, self.cluster.cpu_utilization());
    }

    fn on_arrival(&mut self, ctx: &mut impl PolicyCtx<Ev>, rid: ReqId, fn_idx: u32, now: SimTime) {
        self.dispatch(ctx, RequestId(rid.0), FnId(fn_idx), now);
    }

    fn on_event(&mut self, ctx: &mut impl PolicyCtx<Ev>, ev: Ev, now: SimTime) {
        let Ev::Complete { cid, seq } = ev;
        match self.in_service.get(&cid) {
            Some(&(_, s, _)) if s == seq => {}
            _ => return,
        }
        let (rid, _, started) = self.in_service.remove(&cid).expect("checked");
        let Some(c) = self.cluster.container(cid) else {
            return;
        };
        let cpu_cores = c.cpu().as_cores();
        let done = self
            .cluster
            .finish_service(cid, now)
            .expect("live container");
        debug_assert_eq!(done, rid);
        // `None`: the completion was withheld upstream (stalled behind a
        // federated network partition); only the measurement is deferred.
        if let Some(completion) = ctx.complete(ReqId(rid.0), started, now) {
            self.busy_cpu_seconds += completion.service * cpu_cores;
        }
        self.try_start(ctx, cid, now);
    }

    fn finish(self, outcome: EngineOutcome) -> SimReport {
        let duration = outcome.duration_secs;
        let end = SimTime::from_secs_f64(duration);
        let capacity_cores = self.cluster.total_cpu_capacity().as_cores();
        let per_fn = outcome
            .per_fn
            .into_iter()
            .enumerate()
            .map(|(i, stats)| {
                let f = FnId(i as u32);
                // The allocation is constant: a flat two-point timeline.
                let pool = &self.pools[&f];
                let (mut cpu, mut count) = (0u32, 0u32);
                for &cid in &pool.containers {
                    if let Some(c) = self.cluster.container(cid) {
                        cpu += c.cpu().0;
                        count += 1;
                    }
                }
                let mut cpu_timeline = TimeSeries::new();
                let mut container_timeline = TimeSeries::new();
                for t in [SimTime::ZERO, end] {
                    cpu_timeline.push(t, f64::from(cpu));
                    container_timeline.push(t, f64::from(count));
                }
                (
                    f.0,
                    FnReport {
                        name: stats.name,
                        arrivals: stats.arrivals,
                        completed: stats.completed,
                        reruns: stats.reruns,
                        wait: stats.wait,
                        response: stats.response,
                        service: stats.service,
                        slo_violations: stats.slo_violations,
                        timeouts: stats.timeouts,
                        cpu_timeline,
                        container_timeline,
                        rate_timeline: TimeSeries::new(),
                    },
                )
            })
            .collect();
        SimReport {
            per_fn,
            allocated_utilization: self.util_gauge.average_until(end),
            busy_utilization: if capacity_cores > 0.0 && duration > 0.0 {
                self.busy_cpu_seconds / (capacity_cores * duration)
            } else {
                0.0
            },
            duration,
            overloaded_epochs: 0,
            epochs: 0,
            failed_creates: 0,
            crashes: self.crashes,
            free_timeline: TimeSeries::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lass_functions::{micro_benchmark, WorkloadSpec};

    fn run_static(rate: f64, containers: u32, duration: f64) -> SimReport {
        let mut sim = StaticRrSimulation::new(Cluster::paper_testbed(), 42);
        let mut setup = FunctionSetup::new(
            micro_benchmark(0.1),
            0.1,
            WorkloadSpec::Static { rate, duration },
        );
        setup.initial_containers = containers;
        sim.add_function(setup);
        sim.run(Some(duration))
    }

    #[test]
    fn adequately_provisioned_pool_serves_the_load() {
        // 10 req/s at mu=10 across 4 containers: rho = 0.25.
        let report = run_static(10.0, 4, 120.0);
        let f = &report.per_fn[&0];
        assert!(f.arrivals > 1000);
        assert!(f.completed as f64 > f.arrivals as f64 * 0.99);
        assert!(
            f.slo_attainment() > 0.9,
            "attainment={}",
            f.slo_attainment()
        );
        assert_eq!(report.epochs, 0);
        assert_eq!(f.container_timeline.points()[0].1, 4.0);
    }

    #[test]
    fn overloaded_pool_degrades() {
        // 30 req/s at mu=10 into 2 containers: rho = 1.5, queues explode.
        let report = run_static(30.0, 2, 60.0);
        let f = &report.per_fn[&0];
        assert!(
            f.slo_attainment() < 0.7,
            "attainment={}",
            f.slo_attainment()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_static(15.0, 3, 60.0);
        let b = run_static(15.0, 3, 60.0);
        assert_eq!(a.per_fn[&0].arrivals, b.per_fn[&0].arrivals);
        assert_eq!(a.per_fn[&0].wait.samples(), b.per_fn[&0].wait.samples());
    }

    #[test]
    fn round_robin_spreads_work() {
        // With RR over 4 equal containers and light load, waits stay tiny
        // and utilization is sane.
        let report = run_static(8.0, 4, 60.0);
        assert!(report.busy_utilization > 0.0 && report.busy_utilization <= 1.0);
        assert!(report.allocated_utilization > 0.0);
    }

    #[test]
    fn two_pools_coexist() {
        let mut sim = StaticRrSimulation::new(Cluster::paper_testbed(), 9);
        let mut a = FunctionSetup::new(
            micro_benchmark(0.05),
            0.1,
            WorkloadSpec::Static {
                rate: 12.0,
                duration: 60.0,
            },
        );
        a.initial_containers = 2;
        sim.add_function(a);
        let mut b = FunctionSetup::new(
            lass_functions::binary_alert(),
            0.1,
            WorkloadSpec::Static {
                rate: 20.0,
                duration: 60.0,
            },
        );
        b.initial_containers = 2;
        sim.add_function(b);
        let report = sim.run(Some(60.0));
        assert!(report.per_fn[&0].completed > 500);
        assert!(report.per_fn[&1].completed > 900);
    }
}
