//! Resource-reclamation policies (§4.2).
//!
//! Given a function's fair-share-adjusted CPU budget, translate it into
//! container operations:
//!
//! * **Termination** — keep only whole standard-size containers
//!   (`⌊adjusted/standard⌋`), terminating the lowest-capacity ones first.
//!   Fractions of a standard container are left unused — the fragmentation
//!   the paper observes in Fig. 8b/9b.
//! * **Deflation** — keep (or even grow to) *more* containers by deflating
//!   them uniformly in small increments, up to the threshold `τ`; only when
//!   deflation at `τ` still cannot fit the budget are containers
//!   terminated. This preserves concurrency and uses fragments (Fig. 8c/9c).
//!
//! Both policies are pure functions from a [`FnSnapshot`] to commands, so
//! they are unit-testable without a cluster.

use crate::commands::Command;
use lass_cluster::{ContainerId, CpuMilli, FnId, MemMib};

/// Everything the reclamation policies need to know about one function.
#[derive(Debug, Clone)]
pub struct FnSnapshot {
    /// The function.
    pub fn_id: FnId,
    /// Standard container CPU (Table 1).
    pub standard_cpu: CpuMilli,
    /// Container memory (never deflated).
    pub mem: MemMib,
    /// Live containers: `(id, current CPU, lazily-marked)`.
    pub containers: Vec<(ContainerId, CpuMilli, bool)>,
    /// Model-desired container count (standard-size equivalents).
    pub desired_count: u32,
    /// Fair-share-adjusted CPU budget (milli).
    pub adjusted_cpu: f64,
}

impl FnSnapshot {
    /// Current aggregate CPU.
    pub fn current_cpu(&self) -> CpuMilli {
        self.containers.iter().map(|&(_, c, _)| c).sum()
    }

    /// Containers ordered for termination: marked first, then lowest
    /// capacity, then newest (highest id).
    fn termination_order(&self) -> Vec<(ContainerId, CpuMilli, bool)> {
        let mut v = self.containers.clone();
        v.sort_by_key(|&(cid, cpu, marked)| {
            (std::cmp::Reverse(marked), cpu, std::cmp::Reverse(cid))
        });
        v
    }
}

/// The termination-based reclamation policy (§4.2): whole standard
/// containers only.
pub fn termination_commands(s: &FnSnapshot) -> Vec<Command> {
    let std_cpu = f64::from(s.standard_cpu.0);
    assert!(std_cpu > 0.0);
    let by_budget = (s.adjusted_cpu / std_cpu).floor() as u32;
    let target = by_budget.min(s.desired_count);
    let current = s.containers.len() as u32;
    let mut cmds = Vec::new();

    if current > target {
        let order = s.termination_order();
        for &(cid, _, _) in order.iter().take((current - target) as usize) {
            cmds.push(Command::Terminate { cid });
        }
        // Survivors: unmark and restore to standard size.
        for &(cid, cpu, marked) in order.iter().skip((current - target) as usize) {
            if marked {
                cmds.push(Command::Unmark { cid });
            }
            if cpu != s.standard_cpu {
                cmds.push(Command::Resize {
                    cid,
                    cpu: s.standard_cpu,
                });
            }
        }
    } else {
        for &(cid, cpu, marked) in &s.containers {
            if marked {
                cmds.push(Command::Unmark { cid });
            }
            if cpu != s.standard_cpu {
                cmds.push(Command::Resize {
                    cid,
                    cpu: s.standard_cpu,
                });
            }
        }
        for _ in 0..(target - current) {
            cmds.push(Command::Create {
                fn_id: s.fn_id,
                cpu: s.standard_cpu,
                mem: s.mem,
            });
        }
    }
    cmds
}

/// The deflation-based reclamation policy (§4.2), demand-driven as the
/// paper describes it: containers of over-allocated functions are *not*
/// shrunk eagerly — they keep using spare capacity until an
/// under-provisioned function actually claims it (Fig. 8c shows MobileNet
/// exceeding its fair share whenever BinaryAlert does not need the space).
///
/// At plan level this policy therefore only
///
/// * **marks** surplus containers (beyond the model's desired count) for
///   lazy termination,
/// * **creates** containers for under-allocated functions, sized to fit
///   the remaining fair-share budget (at most `tau` below standard).
///
/// The *reclamation* itself happens on demand in
/// [`crate::controller::LassController::apply`]: when a create does not
/// fit, containers of over-budget functions on one node are deflated "in
/// small increments … until sufficient resources have been reclaimed", and
/// only if deflation up to `tau` cannot free enough are containers
/// terminated (§4.2).
pub fn deflation_commands(s: &FnSnapshot, tau: f64) -> Vec<Command> {
    assert!((0.0..1.0).contains(&tau));
    let std_cpu = f64::from(s.standard_cpu.0);
    assert!(std_cpu > 0.0);

    let current = s.containers.len() as u32;
    let current_cpu = f64::from(s.current_cpu().0);
    let mut cmds = Vec::new();

    if current > s.desired_count {
        // Load dropped: lazily mark the surplus (lowest capacity first);
        // the on-demand reclaimer terminates marked containers first.
        let order = s.termination_order();
        let surplus = (current - s.desired_count) as usize;
        for &(cid, _, marked) in order.iter().take(surplus) {
            if !marked {
                cmds.push(Command::Mark { cid });
            }
        }
        for &(cid, _, marked) in order.iter().skip(surplus) {
            if marked {
                cmds.push(Command::Unmark { cid });
            }
        }
        return cmds;
    }

    // Reuse whatever is marked before growing.
    for &(cid, _, marked) in &s.containers {
        if marked {
            cmds.push(Command::Unmark { cid });
        }
    }
    // Scale-up: new containers are standard-sized (the paper's reclaimer
    // frees "just enough capacity to create one new container"); only as
    // many as the fair-share budget covers.
    let budget = s.adjusted_cpu - current_cpu;
    let tau_floor = std_cpu * (1.0 - tau);
    debug_assert!(tau_floor > 0.0);
    if current < s.desired_count && budget >= std_cpu - 1e-9 {
        let k = ((budget / std_cpu + 1e-9).floor() as u32).min(s.desired_count - current);
        for _ in 0..k {
            cmds.push(Command::Create {
                fn_id: s.fn_id,
                cpu: s.standard_cpu,
                mem: s.mem,
            });
        }
    }
    cmds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(
        containers: Vec<(u64, u32, bool)>,
        desired_count: u32,
        adjusted_cpu: f64,
    ) -> FnSnapshot {
        FnSnapshot {
            fn_id: FnId(0),
            standard_cpu: CpuMilli(2000), // MobileNet-sized
            mem: MemMib(1024),
            containers: containers
                .into_iter()
                .map(|(id, cpu, m)| (ContainerId(id), CpuMilli(cpu), m))
                .collect(),
            desired_count,
            adjusted_cpu,
        }
    }

    fn resulting_cpu(s: &FnSnapshot, cmds: &[Command]) -> (u32, f64) {
        // (container count, total cpu) after applying commands abstractly.
        let mut ctrs: std::collections::BTreeMap<ContainerId, CpuMilli> = s
            .containers
            .iter()
            .map(|&(cid, cpu, _)| (cid, cpu))
            .collect();
        let mut next = 1000u64;
        for c in cmds {
            match *c {
                Command::Terminate { cid } => {
                    ctrs.remove(&cid);
                }
                Command::Resize { cid, cpu } => {
                    ctrs.insert(cid, cpu);
                }
                Command::Create { cpu, .. } => {
                    ctrs.insert(ContainerId(next), cpu);
                    next += 1;
                }
                Command::Mark { .. } | Command::Unmark { .. } => {}
            }
        }
        (
            ctrs.len() as u32,
            ctrs.values().map(|c| f64::from(c.0)).sum(),
        )
    }

    #[test]
    fn termination_keeps_whole_containers_only() {
        // 5 standard containers, budget 6000 of 2000-size => keep 3.
        let s = snap(
            vec![
                (1, 2000, false),
                (2, 2000, false),
                (3, 2000, false),
                (4, 2000, false),
                (5, 2000, false),
            ],
            5,
            6000.0,
        );
        let cmds = termination_commands(&s);
        let (n, cpu) = resulting_cpu(&s, &cmds);
        assert_eq!(n, 3);
        assert_eq!(cpu, 6000.0);
    }

    #[test]
    fn termination_leaves_fragment_unused() {
        // Budget 9500 => floor to 4 containers (8000); 1500 fragment wasted.
        let s = snap(
            vec![
                (1, 2000, false),
                (2, 2000, false),
                (3, 2000, false),
                (4, 2000, false),
                (5, 2000, false),
            ],
            5,
            9500.0,
        );
        let cmds = termination_commands(&s);
        let (n, cpu) = resulting_cpu(&s, &cmds);
        assert_eq!(n, 4);
        assert_eq!(cpu, 8000.0);
        assert!(s.adjusted_cpu - cpu >= 1499.0, "fragment exists");
    }

    #[test]
    fn deflation_plan_does_not_shrink_eagerly() {
        // Demand-driven: a function over its budget keeps its containers —
        // reclamation happens only when another function claims the space
        // (Fig. 8c: MobileNet exceeds its fair share while unclaimed).
        let s = snap(
            vec![
                (1, 2000, false),
                (2, 2000, false),
                (3, 2000, false),
                (4, 2000, false),
                (5, 2000, false),
            ],
            5,
            6000.0,
        );
        let cmds = deflation_commands(&s, 0.30);
        assert!(cmds.is_empty(), "no eager shrink: {cmds:?}");
        // Termination, by contrast, cuts down to whole containers now.
        let (n, cpu) = resulting_cpu(&s, &termination_commands(&s));
        assert_eq!((n, cpu), (3, 6000.0));
    }

    #[test]
    fn deflation_plan_marks_surplus_lazily() {
        // Load dropped (desired 2 < current 4): surplus is marked, not
        // terminated or resized.
        let s = snap(
            vec![
                (1, 2000, false),
                (2, 2000, false),
                (3, 2000, false),
                (4, 2000, true),
            ],
            2,
            4000.0,
        );
        let cmds = deflation_commands(&s, 0.30);
        let marks = cmds
            .iter()
            .filter(|c| matches!(c, Command::Mark { .. }))
            .count();
        assert_eq!(marks, 1, "one new mark joins the existing one: {cmds:?}");
        assert!(!cmds.iter().any(|c| matches!(c, Command::Terminate { .. })));
        assert!(!cmds.iter().any(|c| matches!(c, Command::Resize { .. })));
    }

    #[test]
    fn termination_prefers_marked_then_smallest() {
        let s = snap(
            vec![(1, 2000, false), (2, 1400, false), (3, 2000, true)],
            3,
            2000.0,
        );
        let cmds = termination_commands(&s);
        let terminated: Vec<ContainerId> = cmds
            .iter()
            .filter_map(|c| match c {
                Command::Terminate { cid } => Some(*cid),
                _ => None,
            })
            .collect();
        // Keep 1 container: terminate marked (3) first, then smallest (2).
        assert_eq!(terminated, vec![ContainerId(3), ContainerId(2)]);
    }

    #[test]
    fn scale_up_under_budget_creates_standard_containers() {
        let s = snap(vec![(1, 2000, true)], 4, 8000.0);
        let cmds = termination_commands(&s);
        let creates = cmds
            .iter()
            .filter(|c| matches!(c, Command::Create { .. }))
            .count();
        assert_eq!(creates, 3);
        // The marked survivor is unmarked.
        assert!(cmds
            .iter()
            .any(|c| matches!(c, Command::Unmark { cid } if *cid == ContainerId(1))));
    }

    #[test]
    fn deflation_scale_up_creates_standard_containers_within_budget() {
        // Desired 4 containers, budget 7000: 2000 existing leaves 5000,
        // covering 2 more standard containers (the reclaimer frees room
        // for standard-size creates; the fraction is left to on-demand
        // reclamation).
        let s = snap(vec![(1, 2000, false)], 4, 7000.0);
        let cmds = deflation_commands(&s, 0.30);
        let (n, cpu) = resulting_cpu(&s, &cmds);
        assert_eq!(n, 3);
        assert!(cpu <= 7000.0 + 1e-9);
        for c in &cmds {
            if let Command::Create { cpu, .. } = c {
                assert_eq!(cpu.0, 2000, "creates are standard-sized");
            }
        }
    }

    #[test]
    fn deflation_creates_nothing_when_budget_below_standard() {
        // Remaining budget 1000 < one standard container: no create.
        let s = snap(vec![(1, 2000, false)], 2, 3000.0);
        let cmds = deflation_commands(&s, 0.30);
        assert!(
            !cmds.iter().any(|c| matches!(c, Command::Create { .. })),
            "{cmds:?}"
        );
    }

    #[test]
    fn zero_budget_termination_removes_everything() {
        let s = snap(vec![(1, 2000, false), (2, 2000, false)], 2, 0.0);
        let (n, cpu) = resulting_cpu(&s, &termination_commands(&s));
        assert_eq!((n, cpu), (0, 0.0));
        // Deflation defers: no eager shrink, the space is reclaimed on
        // demand by the executor.
        let cmds = deflation_commands(&s, 0.30);
        assert!(!cmds.iter().any(|c| matches!(c, Command::Create { .. })));
    }

    #[test]
    fn termination_reinflates_survivors() {
        // Previously deflated containers, budget covers full standard.
        let s = snap(vec![(1, 1400, false), (2, 1400, false)], 2, 4000.0);
        let cmds_t = termination_commands(&s);
        let (_, cpu_t) = resulting_cpu(&s, &cmds_t);
        assert_eq!(cpu_t, 4000.0);
    }

    #[test]
    fn desired_count_caps_termination_target() {
        // Budget would fit 5 but the model only wants 2.
        let s = snap(
            vec![(1, 2000, false), (2, 2000, false), (3, 2000, false)],
            2,
            10_000.0,
        );
        let (n, _) = resulting_cpu(&s, &termination_commands(&s));
        assert_eq!(n, 2);
        // Deflation marks the surplus container lazily.
        let cmds = deflation_commands(&s, 0.30);
        assert_eq!(
            cmds.iter()
                .filter(|c| matches!(c, Command::Mark { .. }))
                .count(),
            1
        );
    }
}
