//! Weighted fair-share allocation under overload (§4.1, Eq. 7–8).
//!
//! Inputs are each function's model-computed *desired* CPU and its
//! effective weight (from the scheduling tree); output is the *adjusted*
//! CPU each function may use this epoch. Two algorithms are provided:
//!
//! * [`fair_share_paper`] — the paper's single-pass algorithm: functions
//!   whose desire fits their guaranteed share (`well-behaved`) get their
//!   desire; the remaining capacity is split among the rest purely by
//!   weight (Eq. 8). This can hand an overloaded function *more* than it
//!   asked for when another overloaded function's weight share exceeds its
//!   desire.
//! * [`fair_share`] — iterative water-filling that additionally caps every
//!   function at its desire and redistributes the excess. It preserves the
//!   paper's Lemmas 1–2 (every overloaded function receives at least its
//!   guaranteed share) while never wasting capacity; this is what the
//!   controller uses.
//!
//! All quantities are in fractional CPU-milli (`f64`) — rounding to whole
//! containers is the reclamation policies' job.

use lass_cluster::FnId;
use std::collections::BTreeMap;

/// One function's fair-share inputs.
#[derive(Debug, Clone, Copy)]
pub struct ShareRequest {
    /// The function.
    pub fn_id: FnId,
    /// Effective weight fraction (see `WeightTree::effective_weights`);
    /// requests' weights need not sum to 1 — they are renormalized.
    pub weight: f64,
    /// Model-computed desired CPU (milli, fractional).
    pub desired: f64,
}

fn normalized_weights(requests: &[ShareRequest]) -> BTreeMap<FnId, f64> {
    let total: f64 = requests.iter().map(|r| r.weight).sum();
    assert!(total > 0.0, "weights must sum to a positive value");
    requests
        .iter()
        .map(|r| (r.fn_id, r.weight / total))
        .collect()
}

/// The guaranteed minimum share of each function (Eq. 7): its weight
/// fraction of the total capacity.
pub fn guaranteed_shares(requests: &[ShareRequest], capacity: f64) -> BTreeMap<FnId, f64> {
    normalized_weights(requests)
        .into_iter()
        .map(|(f, w)| (f, w * capacity))
        .collect()
}

/// The paper's single-pass algorithm (Eq. 7–8), verbatim.
pub fn fair_share_paper(requests: &[ShareRequest], capacity: f64) -> BTreeMap<FnId, f64> {
    assert!(capacity >= 0.0);
    let guar = guaranteed_shares(requests, capacity);
    let weights = normalized_weights(requests);

    // Well-behaved functions get their desire.
    let mut adjusted = BTreeMap::new();
    let mut well_behaved_total = 0.0;
    let mut overloaded: Vec<FnId> = Vec::new();
    for r in requests {
        if r.desired <= guar[&r.fn_id] {
            adjusted.insert(r.fn_id, r.desired);
            well_behaved_total += r.desired;
        } else {
            overloaded.push(r.fn_id);
        }
    }
    // Remaining capacity split by weight among overloaded functions (Eq 8).
    let remaining = (capacity - well_behaved_total).max(0.0);
    let over_weight: f64 = overloaded.iter().map(|f| weights[f]).sum();
    for f in overloaded {
        adjusted.insert(f, remaining * weights[&f] / over_weight);
    }
    adjusted
}

/// Water-filling fair share: like [`fair_share_paper`] but iterated so no
/// function receives more than its desire; freed capacity cascades to the
/// still-constrained functions by weight. Terminates in at most `n` rounds.
///
/// ```
/// use lass_core::fairshare::{fair_share, ShareRequest};
/// use lass_cluster::FnId;
///
/// // Two equal-weight functions on 12 vCPU: one modest, one greedy.
/// let requests = [
///     ShareRequest { fn_id: FnId(0), weight: 1.0, desired: 2000.0 },
///     ShareRequest { fn_id: FnId(1), weight: 1.0, desired: 50_000.0 },
/// ];
/// let adjusted = fair_share(&requests, 12_000.0);
/// assert_eq!(adjusted[&FnId(0)], 2000.0);      // well-behaved: full desire
/// assert_eq!(adjusted[&FnId(1)], 10_000.0);    // the rest, >= its 6000 guarantee
/// ```
pub fn fair_share(requests: &[ShareRequest], capacity: f64) -> BTreeMap<FnId, f64> {
    assert!(capacity >= 0.0);
    let weights = normalized_weights(requests);
    let desired: BTreeMap<FnId, f64> = requests.iter().map(|r| (r.fn_id, r.desired)).collect();

    let mut adjusted: BTreeMap<FnId, f64> = BTreeMap::new();
    let mut satisfied: BTreeMap<FnId, bool> = requests.iter().map(|r| (r.fn_id, false)).collect();
    let mut remaining = capacity;

    loop {
        // Weights of the still-unsatisfied set.
        let active_weight: f64 = satisfied
            .iter()
            .filter(|&(_, done)| !done)
            .map(|(f, _)| weights[f])
            .sum();
        if active_weight <= 0.0 || remaining <= 0.0 {
            // Give zero to anyone left (no capacity remains).
            for (f, done) in &satisfied {
                if !done {
                    adjusted.insert(*f, 0.0);
                }
            }
            break;
        }
        // Tentative proportional split of the remaining capacity.
        let mut newly_satisfied = Vec::new();
        for (f, done) in &satisfied {
            if *done {
                continue;
            }
            let share = remaining * weights[f] / active_weight;
            if desired[f] <= share {
                newly_satisfied.push(*f);
            }
        }
        if newly_satisfied.is_empty() {
            // Everyone active is constrained: final proportional split.
            for (f, done) in &satisfied {
                if !*done {
                    adjusted.insert(*f, remaining * weights[f] / active_weight);
                }
            }
            break;
        }
        for f in newly_satisfied {
            adjusted.insert(f, desired[&f]);
            remaining -= desired[&f];
            satisfied.insert(f, true);
        }
        if satisfied.values().all(|&d| d) {
            break;
        }
    }
    adjusted
}

/// Whether the aggregate desire exceeds capacity (the paper's overload
/// condition, `Σ c_new > C`).
pub fn is_overloaded(requests: &[ShareRequest], capacity: f64) -> bool {
    requests.iter().map(|r| r.desired).sum::<f64>() > capacity
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u32, weight: f64, desired: f64) -> ShareRequest {
        ShareRequest {
            fn_id: FnId(id),
            weight,
            desired,
        }
    }

    #[test]
    fn no_overload_everyone_gets_desire() {
        let rs = [req(0, 1.0, 3000.0), req(1, 1.0, 4000.0)];
        assert!(!is_overloaded(&rs, 12000.0));
        let adj = fair_share(&rs, 12000.0);
        assert_eq!(adj[&FnId(0)], 3000.0);
        assert_eq!(adj[&FnId(1)], 4000.0);
    }

    #[test]
    fn lemma1_all_overloaded_get_exactly_guaranteed() {
        // Both want more than their guaranteed share -> each gets w_i/Σw·C.
        let rs = [req(0, 1.0, 10_000.0), req(1, 1.0, 9_000.0)];
        for algo in [fair_share, fair_share_paper] {
            let adj = algo(&rs, 12_000.0);
            assert!((adj[&FnId(0)] - 6000.0).abs() < 1e-9);
            assert!((adj[&FnId(1)] - 6000.0).abs() < 1e-9);
        }
    }

    #[test]
    fn lemma1_weighted() {
        let rs = [req(0, 1.0, 10_000.0), req(1, 2.0, 10_000.0)];
        for algo in [fair_share, fair_share_paper] {
            let adj = algo(&rs, 12_000.0);
            assert!((adj[&FnId(0)] - 4000.0).abs() < 1e-9);
            assert!((adj[&FnId(1)] - 8000.0).abs() < 1e-9);
        }
    }

    #[test]
    fn lemma2_partial_overload_grants_at_least_guaranteed() {
        // f0 well-behaved (desire 2000 <= guar 6000); f1 overloaded.
        let rs = [req(0, 1.0, 2000.0), req(1, 1.0, 50_000.0)];
        for algo in [fair_share, fair_share_paper] {
            let adj = algo(&rs, 12_000.0);
            assert_eq!(adj[&FnId(0)], 2000.0);
            // f1 gets the remainder, which exceeds its guaranteed 6000.
            assert!((adj[&FnId(1)] - 10_000.0).abs() < 1e-9);
            assert!(adj[&FnId(1)] >= 6000.0);
        }
    }

    #[test]
    fn paper_variant_can_overshoot_desire_water_filling_cannot() {
        // Overshoot requires a well-behaved function freeing capacity:
        // guar: f0=7500, f1=3750, f2=750. f0 is well-behaved (desire 1000),
        // so remaining = 11000 is split 5:1 between the overloaded {f1, f2}.
        // The paper's Eq 8 then grants f1 ≈ 9166 — more than its 6000
        // desire; water-filling caps f1 at 6000 and passes the rest to f2.
        let rs = [
            req(0, 10.0, 1000.0),
            req(1, 5.0, 6000.0),
            req(2, 1.0, 50_000.0),
        ];
        let paper = fair_share_paper(&rs, 12_000.0);
        assert!(paper[&FnId(1)] > 6000.0, "paper overshoots: {paper:?}");
        let wf = fair_share(&rs, 12_000.0);
        assert!(
            (wf[&FnId(1)] - 6000.0).abs() < 1e-9,
            "water-filling caps at desire"
        );
        assert!(wf[&FnId(2)] > paper[&FnId(2)], "the overshoot goes to f2");
    }

    #[test]
    fn water_filling_exhausts_capacity_when_demand_exceeds_it() {
        let rs = [req(0, 1.0, 5000.0), req(1, 1.0, 9000.0), req(2, 2.0, 100.0)];
        let adj = fair_share(&rs, 12_000.0);
        let total: f64 = adj.values().sum();
        assert!(total <= 12_000.0 + 1e-6);
        // Demand (14100) > capacity, so allocation should use it all.
        assert!((total - 12_000.0).abs() < 1e-6, "total={total}");
        // And f2's tiny desire is fully met.
        assert_eq!(adj[&FnId(2)], 100.0);
    }

    #[test]
    fn water_filling_never_exceeds_desire_nor_starves_guarantee() {
        // Randomized-ish grid check of both lemma properties.
        let capacity = 12_000.0;
        for &d0 in &[100.0, 3000.0, 8000.0, 20_000.0] {
            for &d1 in &[100.0, 6000.0, 30_000.0] {
                for &w0 in &[0.5, 1.0, 3.0] {
                    let rs = [req(0, w0, d0), req(1, 1.0, d1)];
                    let adj = fair_share(&rs, capacity);
                    let guar = guaranteed_shares(&rs, capacity);
                    for r in &rs {
                        let a = adj[&r.fn_id];
                        assert!(a <= r.desired + 1e-9, "over-grant");
                        // Lemma: min(desire, guaranteed) is always granted.
                        let floor = r.desired.min(guar[&r.fn_id]);
                        assert!(
                            a + 1e-9 >= floor,
                            "starved: got {a}, floor {floor} (d0={d0} d1={d1} w0={w0})"
                        );
                    }
                    let total: f64 = adj.values().sum();
                    assert!(total <= capacity + 1e-6);
                }
            }
        }
    }

    #[test]
    fn zero_capacity_yields_zero_allocations() {
        let rs = [req(0, 1.0, 500.0), req(1, 1.0, 700.0)];
        let adj = fair_share(&rs, 0.0);
        assert_eq!(adj[&FnId(0)], 0.0);
        assert_eq!(adj[&FnId(1)], 0.0);
    }

    #[test]
    fn zero_desire_is_well_behaved() {
        let rs = [req(0, 1.0, 0.0), req(1, 1.0, 50_000.0)];
        let adj = fair_share(&rs, 12_000.0);
        assert_eq!(adj[&FnId(0)], 0.0);
        assert!((adj[&FnId(1)] - 12_000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "weights must sum")]
    fn zero_weights_rejected() {
        let rs = [req(0, 0.0, 1.0)];
        fair_share(&rs, 10.0);
    }
}
