//! A Knative-style concurrency-target autoscaler as a fourth
//! [`SchedulerPolicy`] on the shared discrete-event engine.
//!
//! Knative's horizontal pod autoscaler sizes a function's fleet from
//! *observed concurrency*: it provisions
//! `ceil(expected concurrency / containerConcurrency)` pods, where
//! expected concurrency is `λ̂ × E[service time]` by Little's law. No
//! queueing model, no tail-percentile awareness, no deflation — running
//! this policy against the same scenarios as the LaSS controller
//! quantifies exactly what the paper's models buy (the
//! [`ScalerKind::ConcurrencyTarget`](crate::ScalerKind) variant embeds
//! the same heuristic *inside* the LaSS controller; this policy is the
//! standalone scheduler the heuristic implies).
//!
//! Mechanics:
//!
//! * a scale loop every [`LassConfig::monitor_interval_secs`] (Knative's
//!   autoscaler ticks every couple of seconds) re-estimates each
//!   function's rate (EWMA over the tick's arrivals) and creates /
//!   retires containers toward the concurrency target;
//! * dispatch sends each arrival to the least-loaded schedulable
//!   container (Knative's concurrency-aware request balancing);
//! * scale-down only retires *empty* idle containers (pods drain before
//!   termination), and scale-from-zero is handled by an activator-style
//!   inline cold start on the first arrival.

use crate::config::{LassConfig, ScalerKind};
use crate::simulation::{FnReport, FunctionSetup, SimReport};
use lass_cluster::{Cluster, ContainerId, FnId, RequestId};
use lass_simcore::{
    run_simulation, EngineConfig, EngineOutcome, FunctionEntry, PolicyCtx, ReqId, SchedulerPolicy,
    SimDuration, SimTime, TimeSeries, TimeWeightedGauge,
};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Concurrency-target simulation over a [`Cluster`].
///
/// Reachable from scenario JSON via `"policy": "knative"`; the target
/// comes from [`ScalerKind::ConcurrencyTarget`] when the scenario's
/// config sets it, and defaults to 1 concurrent request per container
/// (the sensible setting for CPU-bound inference functions).
pub struct KnativeSimulation {
    cfg: LassConfig,
    cluster: Cluster,
    seed: u64,
    setups: Vec<FunctionSetup>,
}

impl KnativeSimulation {
    /// Create a simulation over a cluster.
    pub fn new(cfg: LassConfig, cluster: Cluster, seed: u64) -> Self {
        cfg.validate().expect("invalid LassConfig");
        Self {
            cfg,
            cluster,
            seed,
            setups: Vec::new(),
        }
    }

    /// Deploy a function; returns its id (assigned in registration order).
    pub fn add_function(&mut self, setup: FunctionSetup) -> FnId {
        let id = FnId(self.setups.len() as u32);
        self.setups.push(setup);
        id
    }

    /// Run for `duration` seconds (defaults to the longest workload).
    pub fn run(self, duration_override: Option<f64>) -> SimReport {
        let duration = duration_override.unwrap_or_else(|| {
            self.setups
                .iter()
                .map(|s| s.workload.duration())
                .fold(0.0f64, f64::max)
        });
        assert!(duration > 0.0, "simulation needs a positive duration");
        let entries: Vec<FunctionEntry> = self
            .setups
            .iter()
            .map(|s| FunctionEntry {
                name: s.spec.name.clone(),
                slo_deadline: s.slo_deadline,
                process: s.workload.build(),
            })
            .collect();
        let engine_cfg = EngineConfig {
            seed: self.seed,
            rng_label_prefix: "knative-".into(),
            duration_secs: duration,
            drain_secs: 120.0,
            stream_stats: false,
            parallel_sites: None,
        };
        let policy = KnativePolicy::new(self.cfg, self.cluster, self.setups);
        run_simulation(engine_cfg, entries, policy)
    }
}

/// Policy events.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Ev {
    /// A cold-started container finished booting.
    Ready(ContainerId),
    /// A container finished serving a request.
    Complete { cid: ContainerId, seq: u64 },
    /// The recurring autoscaler tick.
    Scale,
}

struct KnFn {
    pending: VecDeque<RequestId>,
    /// EWMA of the per-tick arrival rate (req/s); `None` until the
    /// first tick.
    ewma_rate: Option<f64>,
    cpu_timeline: TimeSeries,
    container_timeline: TimeSeries,
    rate_timeline: TimeSeries,
}

/// The concurrency-target scheduling policy. Crate-visible so the
/// federated harness can instantiate one per topology site.
pub(crate) struct KnativePolicy {
    cfg: LassConfig,
    cluster: Cluster,
    setups: Vec<FunctionSetup>,
    target: f64,
    fns: BTreeMap<FnId, KnFn>,
    in_service: HashMap<ContainerId, (RequestId, u64, SimTime)>,
    next_seq: u64,
    util_gauge: TimeWeightedGauge,
    busy_cpu_seconds: f64,
    epochs: usize,
    overloaded_epochs: usize,
    failed_creates: u32,
    /// Containers lost to chaos bursts (the next scale tick replaces
    /// them if the concurrency target still wants the capacity).
    crashes: usize,
    free_timeline: TimeSeries,
    /// Chaos brown-out service-speed factor (1.0 = nominal).
    service_scale: f64,
}

impl KnativePolicy {
    /// Build the policy, pre-provisioning each function's
    /// `initial_containers` warm at `t = 0`.
    pub(crate) fn new(cfg: LassConfig, mut cluster: Cluster, setups: Vec<FunctionSetup>) -> Self {
        let target = match cfg.scaler {
            ScalerKind::ConcurrencyTarget { target } => target,
            ScalerKind::ModelDriven => 1.0,
        };
        let mut fns = BTreeMap::new();
        for (i, s) in setups.iter().enumerate() {
            let fn_id = FnId(i as u32);
            for _ in 0..s.initial_containers {
                if let Ok(cid) = cluster.create_container_vec(
                    fn_id,
                    s.spec.standard_cpu,
                    s.spec.standard_demand(),
                    SimTime::ZERO,
                    SimTime::ZERO,
                ) {
                    cluster.mark_container_ready(cid);
                }
            }
            fns.insert(
                fn_id,
                KnFn {
                    pending: VecDeque::new(),
                    ewma_rate: None,
                    cpu_timeline: TimeSeries::new(),
                    container_timeline: TimeSeries::new(),
                    rate_timeline: TimeSeries::new(),
                },
            );
        }
        Self {
            cfg,
            cluster,
            setups,
            target,
            fns,
            in_service: HashMap::new(),
            next_seq: 0,
            util_gauge: TimeWeightedGauge::new(SimTime::ZERO, 0.0),
            busy_cpu_seconds: 0.0,
            epochs: 0,
            overloaded_epochs: 0,
            failed_creates: 0,
            crashes: 0,
            free_timeline: TimeSeries::new(),
            service_scale: 1.0,
        }
    }

    /// The least-loaded schedulable container of `f` (ties toward the
    /// older container).
    fn least_loaded(&self, f: FnId) -> Option<ContainerId> {
        let mut best: Option<(usize, ContainerId)> = None;
        for c in self.cluster.fn_containers(f) {
            if !c.is_schedulable() {
                continue;
            }
            let load = c.load();
            match best {
                Some((bl, _)) if bl <= load => {}
                _ => best = Some((load, c.id())),
            }
        }
        best.map(|(_, cid)| cid)
    }

    fn dispatch(&mut self, ctx: &mut impl PolicyCtx<Ev>, rid: RequestId, f: FnId, now: SimTime) {
        if let Some(cid) = self.least_loaded(f) {
            self.cluster
                .container_mut(cid)
                .expect("live container")
                .enqueue(rid);
            self.try_start(ctx, cid, now);
            return;
        }
        // Activator path: nothing schedulable. Cold-start a container
        // immediately (scale-from-zero) and park the request on it.
        let s = &self.setups[f.0 as usize];
        match self.cluster.create_container_vec(
            f,
            s.spec.standard_cpu,
            s.spec.standard_demand(),
            now,
            now + s.spec.cold_start,
        ) {
            Ok(cid) => {
                ctx.schedule(now + s.spec.cold_start, Ev::Ready(cid));
                self.cluster
                    .container_mut(cid)
                    .expect("just created")
                    .enqueue(rid);
            }
            Err(_) => {
                self.failed_creates += 1;
                self.fns
                    .get_mut(&f)
                    .expect("known fn")
                    .pending
                    .push_back(rid);
            }
        }
    }

    fn try_start(&mut self, ctx: &mut impl PolicyCtx<Ev>, cid: ContainerId, now: SimTime) {
        let Some(c) = self.cluster.container(cid) else {
            return;
        };
        let fn_id = c.fn_id();
        let deflation = c.deflation_ratio();
        let Some(rid) = self.cluster.begin_service(cid, now) else {
            return;
        };
        let dur = self.setups[fn_id.0 as usize]
            .spec
            .service
            .sample(deflation, ctx.service_rng(fn_id.0))
            / self.service_scale;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.in_service.insert(cid, (rid, seq, now));
        ctx.schedule(
            now + SimDuration::from_secs_f64(dur),
            Ev::Complete { cid, seq },
        );
    }

    /// Give an idle container work: first its own queue, then the
    /// function's pending backlog.
    fn feed(&mut self, ctx: &mut impl PolicyCtx<Ev>, cid: ContainerId, f: FnId, now: SimTime) {
        self.try_start(ctx, cid, now);
        loop {
            let Some(c) = self.cluster.container(cid) else {
                return;
            };
            if !c.is_idle() {
                return;
            }
            let Some(rid) = self.fns.get_mut(&f).expect("known fn").pending.pop_front() else {
                return;
            };
            self.cluster
                .container_mut(cid)
                .expect("live container")
                .enqueue(rid);
            self.try_start(ctx, cid, now);
        }
    }

    fn on_scale(&mut self, ctx: &mut impl PolicyCtx<Ev>, now: SimTime) {
        self.epochs += 1;
        let window = ctx.take_window_counts();
        let alpha = self.cfg.ewma_alpha;
        let mut tick_overloaded = false;
        let fn_ids: Vec<FnId> = self.fns.keys().copied().collect();
        for f in fn_ids {
            let raw_rate = window[f.0 as usize] as f64 / self.cfg.monitor_interval_secs;
            let rt = self.fns.get_mut(&f).expect("known fn");
            let ewma = match rt.ewma_rate {
                Some(prev) => alpha * raw_rate + (1.0 - alpha) * prev,
                None => raw_rate,
            };
            rt.ewma_rate = Some(ewma);
            rt.rate_timeline.push(now, raw_rate);

            let s = &self.setups[f.0 as usize];
            let expected_concurrency = ewma * s.spec.service.base_time;
            let desired = if expected_concurrency <= f64::EPSILON {
                0
            } else {
                ((expected_concurrency / self.target).ceil() as u32)
                    .clamp(1, self.cfg.max_containers_per_fn)
            };
            let current = self.cluster.fn_container_count(f) as u32;
            if desired > current {
                for _ in 0..(desired - current) {
                    match self.cluster.create_container_vec(
                        f,
                        s.spec.standard_cpu,
                        s.spec.standard_demand(),
                        now,
                        now + s.spec.cold_start,
                    ) {
                        Ok(cid) => ctx.schedule(now + s.spec.cold_start, Ev::Ready(cid)),
                        Err(_) => {
                            self.failed_creates += 1;
                            tick_overloaded = true;
                        }
                    }
                }
            } else if desired < current {
                // Retire only drained (idle, empty) containers, newest
                // first — pods finish their work before termination.
                let mut victims: Vec<ContainerId> = self
                    .cluster
                    .fn_containers(f)
                    .filter(|c| c.is_idle() && c.load() == 0)
                    .map(|c| c.id())
                    .collect();
                victims.reverse();
                victims.truncate((current - desired) as usize);
                for cid in victims {
                    self.in_service.remove(&cid);
                    let term = self
                        .cluster
                        .terminate_container(cid, now)
                        .expect("victim is live");
                    debug_assert!(term.orphans.is_empty(), "drained container had work");
                }
            }

            // Timelines (post-scale allocation).
            let (mut cpu, mut count) = (0u32, 0u32);
            for c in self.cluster.fn_containers(f) {
                cpu += c.cpu().0;
                count += 1;
            }
            let rt = self.fns.get_mut(&f).expect("known fn");
            rt.cpu_timeline.push(now, f64::from(cpu));
            rt.container_timeline.push(now, f64::from(count));
        }
        if tick_overloaded {
            self.overloaded_epochs += 1;
        }
        self.util_gauge.set(now, self.cluster.cpu_utilization());
        self.free_timeline
            .push(now, 1.0 - self.cluster.cpu_utilization());
        #[cfg(debug_assertions)]
        self.cluster.check_invariants();
    }
}

impl lass_simcore::ContainerChaos for KnativePolicy {
    /// Chaos burst: terminate up to `count` live containers (lowest ids
    /// first). Orphans re-enter dispatch, which may activator-cold-start
    /// replacements immediately; the scale loop restores the fleet.
    fn crash_containers(&mut self, ctx: &mut impl PolicyCtx<Ev>, count: u32, now: SimTime) -> u32 {
        let mut victims = self.cluster.container_ids();
        victims.truncate(count as usize);
        let mut crashed = 0u32;
        for cid in victims {
            let Ok(term) = self.cluster.terminate_container(cid, now) else {
                continue;
            };
            crashed += 1;
            self.crashes += 1;
            self.in_service.remove(&cid);
            let f = term.container.fn_id();
            for rid in term.orphans {
                if ctx.rerun(ReqId(rid.0)).is_some() {
                    self.dispatch(ctx, rid, f, now);
                }
            }
        }
        crashed
    }

    /// Brown-out absorption: scale every subsequent service draw by
    /// `1/factor` (1.0 restores nominal speed exactly).
    fn set_service_factor(&mut self, factor: f64) {
        self.service_scale = if factor.is_finite() && factor > 0.0 {
            factor.min(1.0)
        } else {
            1.0
        };
    }

    /// Per-dimension capacity/allocation census for vector telemetry
    /// and the planner router.
    fn resource_snapshot(&self) -> lass_simcore::ResourceSnapshot {
        let cap = self.cluster.total_capacity_vec();
        let used = self.cluster.total_used_vec();
        lass_simcore::ResourceSnapshot {
            cap: [
                f64::from(cap.cpu.0),
                f64::from(cap.mem.0),
                f64::from(cap.bandwidth.0),
            ],
            used: [
                f64::from(used.cpu.0),
                f64::from(used.mem.0),
                f64::from(used.bandwidth.0),
            ],
        }
    }

    /// Warm-container census for the affinity router: the function's
    /// booted fleet (cold-starting containers excluded).
    fn warm_containers(&self, fn_idx: u32) -> u64 {
        self.cluster.fn_warm_count(FnId(fn_idx))
    }
}

impl SchedulerPolicy for KnativePolicy {
    type Event = Ev;
    type Report = SimReport;

    fn on_start(&mut self, ctx: &mut impl PolicyCtx<Ev>) {
        self.util_gauge
            .set(SimTime::ZERO, self.cluster.cpu_utilization());
        ctx.schedule(
            SimTime::from_secs_f64(self.cfg.monitor_interval_secs),
            Ev::Scale,
        );
    }

    fn on_arrival(&mut self, ctx: &mut impl PolicyCtx<Ev>, rid: ReqId, fn_idx: u32, now: SimTime) {
        self.dispatch(ctx, RequestId(rid.0), FnId(fn_idx), now);
    }

    fn on_event(&mut self, ctx: &mut impl PolicyCtx<Ev>, ev: Ev, now: SimTime) {
        match ev {
            Ev::Ready(cid) => {
                if !self.cluster.mark_container_ready(cid) {
                    return; // terminated while starting, or a stale event
                }
                let f = self.cluster.container(cid).expect("just marked").fn_id();
                self.feed(ctx, cid, f, now);
            }
            Ev::Complete { cid, seq } => {
                match self.in_service.get(&cid) {
                    Some(&(_, s, _)) if s == seq => {}
                    _ => return,
                }
                let (rid, _, started) = self.in_service.remove(&cid).expect("checked");
                let Some(c) = self.cluster.container(cid) else {
                    return;
                };
                let f = c.fn_id();
                let cpu_cores = c.cpu().as_cores();
                let done = self
                    .cluster
                    .finish_service(cid, now)
                    .expect("live container");
                debug_assert_eq!(done, rid);
                // `None`: the completion was withheld upstream (stalled
                // behind a federated network partition).
                if let Some(completion) = ctx.complete(ReqId(rid.0), started, now) {
                    self.busy_cpu_seconds += completion.service * cpu_cores;
                }
                self.feed(ctx, cid, f, now);
            }
            Ev::Scale => {
                self.on_scale(ctx, now);
                if now < ctx.end_time() {
                    ctx.schedule(
                        now + SimDuration::from_secs_f64(self.cfg.monitor_interval_secs),
                        Ev::Scale,
                    );
                }
            }
        }
    }

    fn finish(mut self, outcome: EngineOutcome) -> SimReport {
        let duration = outcome.duration_secs;
        let end = SimTime::from_secs_f64(duration);
        let capacity_cores = self.cluster.total_cpu_capacity().as_cores();
        let per_fn = outcome
            .per_fn
            .into_iter()
            .enumerate()
            .map(|(i, stats)| {
                let f = FnId(i as u32);
                let rt = self.fns.get_mut(&f).expect("known fn");
                (
                    f.0,
                    FnReport {
                        name: stats.name,
                        arrivals: stats.arrivals,
                        completed: stats.completed,
                        reruns: stats.reruns,
                        wait: stats.wait,
                        response: stats.response,
                        service: stats.service,
                        slo_violations: stats.slo_violations,
                        timeouts: stats.timeouts,
                        cpu_timeline: std::mem::take(&mut rt.cpu_timeline),
                        container_timeline: std::mem::take(&mut rt.container_timeline),
                        rate_timeline: std::mem::take(&mut rt.rate_timeline),
                    },
                )
            })
            .collect();
        SimReport {
            per_fn,
            allocated_utilization: self.util_gauge.average_until(end),
            busy_utilization: if capacity_cores > 0.0 && duration > 0.0 {
                self.busy_cpu_seconds / (capacity_cores * duration)
            } else {
                0.0
            },
            duration,
            overloaded_epochs: self.overloaded_epochs,
            epochs: self.epochs,
            failed_creates: self.failed_creates,
            crashes: self.crashes,
            free_timeline: std::mem::take(&mut self.free_timeline),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lass_functions::{micro_benchmark, WorkloadSpec};

    fn run_knative(rate: f64, duration: f64, target: f64, initial: u32) -> SimReport {
        let mut cfg = LassConfig::default();
        cfg.scaler = ScalerKind::ConcurrencyTarget { target };
        let mut sim = KnativeSimulation::new(cfg, Cluster::paper_testbed(), 42);
        let mut setup = FunctionSetup::new(
            micro_benchmark(0.1),
            0.1,
            WorkloadSpec::Static { rate, duration },
        );
        setup.initial_containers = initial;
        sim.add_function(setup);
        sim.run(Some(duration))
    }

    #[test]
    fn scales_from_zero_and_serves_the_load() {
        let report = run_knative(20.0, 180.0, 1.0, 0);
        let f = &report.per_fn[&0];
        assert!(f.arrivals > 3000, "arrivals={}", f.arrivals);
        assert!(
            f.completed as f64 > f.arrivals as f64 * 0.98,
            "completed={} arrivals={}",
            f.completed,
            f.arrivals
        );
        // Little's law: 20 req/s × 0.1 s = 2 expected concurrency; the
        // EWMA fleet settles in that neighbourhood.
        let late: Vec<f64> = f
            .container_timeline
            .points()
            .iter()
            .filter(|(t, _)| *t > 60.0)
            .map(|(_, v)| *v)
            .collect();
        let avg: f64 = late.iter().sum::<f64>() / late.len() as f64;
        assert!((1.0..=6.0).contains(&avg), "containers avg={avg}");
        assert!(report.epochs > 10);
    }

    #[test]
    fn higher_target_provisions_fewer_containers() {
        let tight = run_knative(30.0, 120.0, 1.0, 0);
        let loose = run_knative(30.0, 120.0, 4.0, 0);
        let avg = |r: &SimReport| {
            let pts: Vec<f64> = r.per_fn[&0]
                .container_timeline
                .points()
                .iter()
                .filter(|(t, _)| *t > 60.0)
                .map(|(_, v)| *v)
                .collect();
            pts.iter().sum::<f64>() / pts.len() as f64
        };
        assert!(
            avg(&loose) < avg(&tight),
            "loose={} tight={}",
            avg(&loose),
            avg(&tight)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_knative(15.0, 60.0, 1.0, 1);
        let b = run_knative(15.0, 60.0, 1.0, 1);
        assert_eq!(a.per_fn[&0].arrivals, b.per_fn[&0].arrivals);
        assert_eq!(a.per_fn[&0].wait.samples(), b.per_fn[&0].wait.samples());
    }

    #[test]
    fn idle_fleet_scales_down() {
        // Load for 60 s, then silence; the fleet drains back toward zero.
        let mut cfg = LassConfig::default();
        cfg.scaler = ScalerKind::ConcurrencyTarget { target: 1.0 };
        let mut sim = KnativeSimulation::new(cfg, Cluster::paper_testbed(), 7);
        sim.add_function(FunctionSetup::new(
            micro_benchmark(0.1),
            0.1,
            WorkloadSpec::Steps {
                steps: vec![(0.0, 25.0), (60.0, 0.0)],
                duration: 240.0,
            },
        ));
        let report = sim.run(Some(240.0));
        let f = &report.per_fn[&0];
        let last = f.container_timeline.points().last().expect("ticked").1;
        assert!(last <= 1.0, "fleet did not drain: {last}");
        assert!(f.completed > 1000);
    }
}
