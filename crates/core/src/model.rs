//! Per-function desired-allocation computation (§3.3).
//!
//! Each epoch, the controller feeds the smoothed arrival rate, the
//! profiler's service-time estimates and the SLO deadline into the queueing
//! models to obtain the container allocation each function *wants*:
//!
//! * homogeneous fleets use Algorithm 1 over M/M/c (§3.1);
//! * fleets with deflated (heterogeneous) containers keep their existing
//!   containers and use the Alves worst-case bound to size the standard
//!   containers to add (§3.2).

use crate::config::LassConfig;
use lass_cluster::{Cluster, FnId};
use lass_functions::ServiceTimeProfiler;
use lass_queueing::{
    required_additional_containers, required_containers_exact, SolverConfig, SolverError,
};

/// The model's verdict for one function this epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct DesiredAllocation {
    /// The function.
    pub fn_id: FnId,
    /// Total desired containers (kept existing + additional standard).
    pub count: u32,
    /// Desired aggregate CPU in milli (fractional to carry deflated sizes).
    pub cpu: f64,
    /// New standard-size containers beyond the kept existing fleet.
    pub additional: u32,
    /// Whether the heterogeneous model was used.
    pub hetero: bool,
    /// Solver iterations (scalability reporting, Fig. 5).
    pub solver_iterations: u32,
}

/// Why the model could not produce an allocation.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// No service-time information for the function.
    NoServiceEstimate(FnId),
    /// The solver failed (budget exhausted / infeasible).
    Solver(SolverError),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::NoServiceEstimate(id) => {
                write!(f, "no service-time estimate for {id}")
            }
            ModelError::Solver(e) => write!(f, "solver: {e}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<SolverError> for ModelError {
    fn from(e: SolverError) -> Self {
        ModelError::Solver(e)
    }
}

/// The wait budget for a function: the full SLO deadline when the SLO is on
/// waiting time only (the paper's evaluation convention), otherwise the
/// deadline minus the service-time tail (§3.1: `t = d − 1/μ_p99`).
pub fn wait_budget_for(cfg: &LassConfig, slo_deadline: f64, service_p99: f64) -> f64 {
    if cfg.slo_on_waiting_only {
        slo_deadline
    } else {
        slo_deadline - service_p99
    }
}

/// Compute the desired allocation for one function.
///
/// `standard_cpu_milli` is the function's standard container size (from its
/// spec). `keep_deflated` selects the heterogeneous path: existing
/// containers are kept at their current (possibly deflated) sizes and only
/// *additional* standard containers are sized (used when re-inflation is
/// not possible or suppressed, e.g. the Fig. 4 validation). Otherwise the
/// fleet is assumed homogeneous at the standard size.
pub fn desired_allocation(
    cluster: &Cluster,
    fn_id: FnId,
    lambda: f64,
    slo_deadline: f64,
    standard_cpu_milli: f64,
    profiler: &ServiceTimeProfiler,
    cfg: &LassConfig,
    keep_deflated: bool,
) -> Result<DesiredAllocation, ModelError> {
    if lambda <= f64::EPSILON {
        return Ok(DesiredAllocation {
            fn_id,
            count: 0,
            cpu: 0.0,
            additional: 0,
            hetero: false,
            solver_iterations: 0,
        });
    }
    let std_est = profiler
        .estimate(fn_id, 0.0)
        .ok_or(ModelError::NoServiceEstimate(fn_id))?;
    let t = wait_budget_for(cfg, slo_deadline, std_est.p99);
    let solver_cfg = SolverConfig {
        target_percentile: cfg.target_percentile,
        max_containers: cfg.max_containers_per_fn,
    };

    let has_deflated = keep_deflated && cluster.fn_containers(fn_id).any(|c| c.is_deflated());

    if !has_deflated {
        // Homogeneous: Algorithm 1.
        let res = required_containers_exact(lambda, std_est.rate, t, &solver_cfg)?;
        Ok(DesiredAllocation {
            fn_id,
            count: res.containers,
            cpu: f64::from(res.containers) * standard_cpu_milli,
            additional: res.containers,
            hetero: false,
            solver_iterations: res.iterations,
        })
    } else {
        // Heterogeneous: keep the whole existing fleet (deflated and
        // standard members) and top up with standard containers.
        let mut existing: Vec<f64> = cluster
            .fn_containers(fn_id)
            .map(|c| {
                profiler
                    .estimate(fn_id, c.deflation_ratio())
                    .map_or(std_est.rate, |e| e.rate)
            })
            .collect();
        existing.sort_by(|a, b| a.partial_cmp(b).expect("finite rates"));
        let res = required_additional_containers(lambda, &existing, std_est.rate, t, &solver_cfg)?;
        let existing_cpu: f64 = cluster
            .fn_containers(fn_id)
            .map(|c| f64::from(c.cpu().0))
            .sum();
        Ok(DesiredAllocation {
            fn_id,
            count: existing.len() as u32 + res.containers,
            cpu: existing_cpu + f64::from(res.containers) * standard_cpu_milli,
            additional: res.containers,
            hetero: true,
            solver_iterations: res.iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lass_cluster::{CpuMilli, MemMib, PlacementPolicy};
    use lass_functions::ServiceModel;
    use lass_simcore::SimTime;

    fn profiler_with(fn_id: FnId, base: f64) -> ServiceTimeProfiler {
        let mut p = ServiceTimeProfiler::new(50);
        p.register(fn_id, ServiceModel::exponential(base, 0.7));
        p
    }

    fn big_cluster() -> Cluster {
        Cluster::homogeneous(
            10,
            CpuMilli(100_000),
            MemMib(1 << 20),
            PlacementPolicy::WorstFit,
        )
    }

    #[test]
    fn zero_rate_desires_nothing() {
        let cl = big_cluster();
        let p = profiler_with(FnId(0), 0.1);
        let d = desired_allocation(
            &cl,
            FnId(0),
            0.0,
            0.1,
            1000.0,
            &p,
            &LassConfig::default(),
            false,
        )
        .unwrap();
        assert_eq!(d.count, 0);
        assert_eq!(d.cpu, 0.0);
    }

    #[test]
    fn homogeneous_matches_solver() {
        let cl = big_cluster();
        let p = profiler_with(FnId(0), 0.1);
        let cfg = LassConfig::default();
        let d = desired_allocation(&cl, FnId(0), 30.0, 0.1, 1000.0, &p, &cfg, false).unwrap();
        let expect = required_containers_exact(
            30.0,
            10.0,
            0.1,
            &SolverConfig {
                target_percentile: cfg.target_percentile,
                max_containers: cfg.max_containers_per_fn,
            },
        )
        .unwrap();
        assert_eq!(d.count, expect.containers);
        assert!(!d.hetero);
    }

    #[test]
    fn unknown_function_errors() {
        let cl = big_cluster();
        let p = ServiceTimeProfiler::new(50);
        let err = desired_allocation(
            &cl,
            FnId(7),
            5.0,
            0.1,
            1000.0,
            &p,
            &LassConfig::default(),
            false,
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::NoServiceEstimate(_)));
    }

    #[test]
    fn heterogeneous_path_keeps_deflated_fleet() {
        let mut cl = big_cluster();
        let fn_id = FnId(0);
        let mut ids = Vec::new();
        for _ in 0..4 {
            ids.push(
                cl.create_container(
                    fn_id,
                    CpuMilli(1000),
                    MemMib(512),
                    SimTime::ZERO,
                    SimTime::ZERO,
                )
                .unwrap(),
            );
        }
        // Deflate two containers by 50%.
        cl.resize_container_cpu(ids[0], CpuMilli(500)).unwrap();
        cl.resize_container_cpu(ids[1], CpuMilli(500)).unwrap();
        let p = profiler_with(fn_id, 0.1);
        let cfg = LassConfig::default();
        let d = desired_allocation(&cl, fn_id, 40.0, 0.1, 1000.0, &p, &cfg, true).unwrap();
        assert!(d.hetero);
        assert!(d.count >= 4, "keeps the existing fleet");
        assert_eq!(d.count - 4, d.additional);
        // CPU accounts for deflated sizes: 2*500 + 2*1000 + extra*1000.
        let expect_cpu = 3000.0 + f64::from(d.additional) * 1000.0;
        assert!((d.cpu - expect_cpu).abs() < 1e-9);
    }

    #[test]
    fn waiting_only_budget_is_full_deadline() {
        let cfg = LassConfig::default();
        assert_eq!(wait_budget_for(&cfg, 0.1, 0.46), 0.1);
        let mut cfg2 = cfg;
        cfg2.slo_on_waiting_only = false;
        assert!((wait_budget_for(&cfg2, 0.5, 0.2) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn higher_load_desires_more_cpu() {
        let mut cl = big_cluster();
        let fn_id = FnId(0);
        cl.create_container(
            fn_id,
            CpuMilli(1000),
            MemMib(512),
            SimTime::ZERO,
            SimTime::ZERO,
        )
        .unwrap();
        let p = profiler_with(fn_id, 0.1);
        let cfg = LassConfig::default();
        let lo = desired_allocation(&cl, fn_id, 10.0, 0.1, 1000.0, &p, &cfg, false).unwrap();
        let hi = desired_allocation(&cl, fn_id, 50.0, 0.1, 1000.0, &p, &cfg, false).unwrap();
        assert!(hi.count > lo.count);
        assert!(hi.cpu > lo.cpu);
    }
}
