//! The LaSS controller (§3.3 + §4): per-epoch, model-driven planning of
//! container allocations with fair-share fallback under overload, plus the
//! command executor that applies a plan to the cluster.
//!
//! Each epoch the controller:
//!
//! 1. turns the sliding-window arrival counts into a burst-aware, EWMA-
//!    smoothed rate estimate per function (§3.3, §5),
//! 2. solves the queueing model for every function's desired allocation —
//!    in parallel across functions, as the paper notes is possible (§6.3),
//! 3. detects overload (`Σ desired > capacity`) and, if so, applies
//!    weighted fair share (Eq. 7–8) using the hierarchical weight tree,
//! 4. emits container commands through the configured reclamation policy
//!    (termination or deflation), with lazy termination marks in the
//!    normal (non-overloaded) case.

use crate::commands::{Command, Plan};
use crate::config::{LassConfig, ReclamationPolicy, ScalerKind};
use crate::fairshare::{fair_share, is_overloaded, ShareRequest};
use crate::model::{desired_allocation, DesiredAllocation};
use crate::predictor::Predictor;
use crate::reclaim::{deflation_commands, termination_commands, FnSnapshot};
use crate::registry::FunctionRegistry;
use lass_cluster::{Cluster, ContainerId, FnId, RequestId};
use lass_simcore::{SimDuration, SimTime};
use rayon::prelude::*;
use std::collections::BTreeMap;

/// Outcome of applying a plan to the cluster.
#[derive(Debug, Default)]
pub struct ApplyOutcome {
    /// Newly created containers and the instant each becomes ready.
    pub created: Vec<(ContainerId, SimTime)>,
    /// Requests orphaned by terminations; they must be re-dispatched.
    pub orphans: Vec<RequestId>,
    /// Containers terminated by this plan.
    pub terminated: Vec<ContainerId>,
    /// Creates that could not be satisfied even after lazy reclamation.
    pub failed_creates: u32,
    /// Resizes that could not be applied (e.g. re-inflation with no room).
    pub failed_resizes: u32,
}

/// The LaSS control module.
#[derive(Debug, Clone)]
pub struct LassController {
    cfg: LassConfig,
    registry: FunctionRegistry,
    profiler: lass_functions::ServiceTimeProfiler,
    trackers: BTreeMap<FnId, Predictor>,
    /// Re-inflate deflated containers when capacity allows (disabled for
    /// the Fig. 4 heterogeneous-model validation).
    reinflate: bool,
}

impl LassController {
    /// Build a controller over a function registry. Offline service-time
    /// profiles are loaded from each function's spec (§5, approach 1).
    pub fn new(cfg: LassConfig, registry: FunctionRegistry) -> Self {
        cfg.validate().expect("invalid LassConfig");
        let mut profiler = lass_functions::ServiceTimeProfiler::new(cfg.profiler_min_samples);
        let mut trackers = BTreeMap::new();
        for rec in registry.iter() {
            profiler.register(rec.fn_id, rec.spec.service);
            trackers.insert(
                rec.fn_id,
                Predictor::new(
                    cfg.predictor,
                    cfg.long_window_secs,
                    cfg.short_window_secs,
                    cfg.burst_factor,
                    cfg.ewma_alpha,
                ),
            );
        }
        Self {
            cfg,
            registry,
            profiler,
            trackers,
            reinflate: true,
        }
    }

    /// The configuration in force.
    pub fn cfg(&self) -> &LassConfig {
        &self.cfg
    }

    /// The function registry.
    pub fn registry(&self) -> &FunctionRegistry {
        &self.registry
    }

    /// The service-time profiler (offline profiles + online learner).
    pub fn profiler(&self) -> &lass_functions::ServiceTimeProfiler {
        &self.profiler
    }

    /// Enable/disable re-inflation of deflated containers outside overload
    /// (default on; Fig. 4 turns it off to validate the heterogeneous
    /// model).
    pub fn set_reinflate(&mut self, on: bool) {
        self.reinflate = on;
    }

    /// Feed the per-function arrival counts observed since the last
    /// monitoring tick (§5: every 5 seconds).
    pub fn on_monitor_tick(&mut self, now_secs: f64, arrivals: &BTreeMap<FnId, u64>) {
        for (fn_id, tracker) in &mut self.trackers {
            let n = arrivals.get(fn_id).copied().unwrap_or(0);
            tracker.record(now_secs, n);
        }
    }

    /// Feed one observed service time (§5: online learning of the service
    /// time distributions, bucketed by deflation).
    pub fn record_service(&mut self, fn_id: FnId, deflation: f64, secs: f64) {
        self.profiler.record(fn_id, deflation, secs);
    }

    /// The configured predictor's arrival-rate estimate for a function
    /// (the paper's default: burst-aware dual windows with EWMA smoothing
    /// and a short-window override during bursts, §5).
    pub fn estimated_rate(&mut self, fn_id: FnId, now_secs: f64) -> f64 {
        self.trackers
            .get_mut(&fn_id)
            .map_or(0.0, |t| t.predict(now_secs))
    }

    /// Plan one epoch: model solve → overload check → fair share →
    /// reclamation commands. Does not mutate the cluster; see
    /// [`LassController::apply`].
    pub fn plan_epoch(&mut self, cluster: &Cluster, now_secs: f64) -> Plan {
        if !self.cfg.autoscale {
            return Plan::default();
        }
        // 1. Rate estimates (sequential: mutates EWMA state).
        let fn_ids: Vec<FnId> = self.registry.iter().map(|r| r.fn_id).collect();
        let rates: BTreeMap<FnId, f64> = fn_ids
            .iter()
            .map(|&f| (f, self.estimated_rate(f, now_secs)))
            .collect();

        // 2. Model solves, parallel across functions (§6.3).
        let cfg = &self.cfg;
        let profiler = &self.profiler;
        let registry = &self.registry;
        let reinflate = self.reinflate;
        let solved: Vec<(FnId, DesiredAllocation)> = fn_ids
            .par_iter()
            .map(|&fn_id| {
                let rec = registry.get(fn_id).expect("registered");
                let std_cpu = f64::from(rec.spec.standard_cpu.0);
                if let ScalerKind::ConcurrencyTarget { target } = cfg.scaler {
                    // Knative-style heuristic: Little's-law concurrency
                    // divided by the per-container target.
                    let lambda = rates[&fn_id];
                    let mean_s = profiler
                        .estimate(fn_id, 0.0)
                        .map_or(rec.spec.service.base_time, |e| e.mean);
                    let count = if lambda <= f64::EPSILON {
                        0
                    } else {
                        ((lambda * mean_s / target).ceil() as u32).max(1)
                    };
                    return (
                        fn_id,
                        DesiredAllocation {
                            fn_id,
                            count,
                            cpu: f64::from(count) * std_cpu,
                            additional: count,
                            hetero: false,
                            solver_iterations: 1,
                        },
                    );
                }
                let d = desired_allocation(
                    cluster,
                    fn_id,
                    rates[&fn_id],
                    rec.slo_deadline,
                    std_cpu,
                    profiler,
                    cfg,
                    !reinflate,
                )
                .unwrap_or_else(|_| {
                    // Model failure: hold the current allocation.
                    let count = cluster.fn_container_count(fn_id) as u32;
                    DesiredAllocation {
                        fn_id,
                        count,
                        cpu: f64::from(cluster.fn_cpu(fn_id).0),
                        additional: 0,
                        hetero: false,
                        solver_iterations: 0,
                    }
                })
                .clamp_to_solver_cap(cfg.max_containers_per_fn, std_cpu);
                (fn_id, d)
            })
            .collect();
        let desired: BTreeMap<FnId, DesiredAllocation> = solved.into_iter().collect();
        let solver_iterations = desired.values().map(|d| d.solver_iterations).sum();

        // 3. Overload detection & fair share (on CPU-milli).
        let capacity = f64::from(cluster.total_cpu_capacity().0);
        let requests: Vec<ShareRequest> = {
            let weights = self
                .registry
                .weight_tree()
                .effective_weights_among(fn_ids.iter().copied());
            fn_ids
                .iter()
                .map(|&f| ShareRequest {
                    fn_id: f,
                    weight: weights.get(&f).copied().unwrap_or(1.0).max(1e-12),
                    desired: desired[&f].cpu,
                })
                .collect()
        };
        let overloaded = is_overloaded(&requests, capacity);
        let adjusted: BTreeMap<FnId, f64> = if overloaded {
            fair_share(&requests, capacity)
        } else {
            requests.iter().map(|r| (r.fn_id, r.desired)).collect()
        };

        // 4. Per-function commands.
        let mut commands = Vec::new();
        for &fn_id in &fn_ids {
            let rec = self.registry.get(fn_id).expect("registered");
            let snapshot = FnSnapshot {
                fn_id,
                standard_cpu: rec.spec.standard_cpu,
                mem: rec.spec.standard_mem,
                containers: cluster
                    .fn_containers(fn_id)
                    .map(|c| (c.id(), c.cpu(), c.is_marked_for_termination()))
                    .collect(),
                desired_count: desired[&fn_id].count,
                adjusted_cpu: adjusted[&fn_id],
            };
            if overloaded {
                match self.cfg.reclamation {
                    ReclamationPolicy::Termination => {
                        commands.extend(termination_commands(&snapshot));
                    }
                    ReclamationPolicy::Deflation => {
                        commands.extend(deflation_commands(&snapshot, self.cfg.deflation_max));
                    }
                }
            } else {
                commands.extend(self.normal_mode_commands(&snapshot, &desired[&fn_id]));
            }
        }

        // Capacity-releasing commands first, creates last; creates are
        // ordered largest-first (first-fit-decreasing) so big containers
        // are not stranded by fragmentation from small ones.
        commands.sort_by_key(|c| match c {
            Command::Terminate { .. } => (0, 0u32),
            Command::Resize { .. } => (1, 0),
            Command::Mark { .. } | Command::Unmark { .. } => (2, 0),
            Command::Create { cpu, .. } => (3, u32::MAX - cpu.0),
        });

        Plan {
            commands,
            overloaded,
            desired_cpu: desired.iter().map(|(f, d)| (*f, d.cpu)).collect(),
            adjusted_cpu: adjusted,
            solver_iterations,
        }
    }

    /// Commands for one function when the cluster is *not* overloaded:
    /// scale to the model's desired count, marking surplus containers for
    /// lazy termination and reusing marked ones before creating (§3.3).
    fn normal_mode_commands(&self, s: &FnSnapshot, d: &DesiredAllocation) -> Vec<Command> {
        let mut cmds = Vec::new();
        let current = s.containers.len() as u32;
        let target = d.count;
        if current > target {
            // Mark the (current - target) lowest-capacity containers.
            let mut order = s.containers.clone();
            order.sort_by_key(|&(cid, cpu, _)| (cpu, std::cmp::Reverse(cid)));
            let surplus = (current - target) as usize;
            for &(cid, _, marked) in order.iter().take(surplus) {
                if !marked {
                    cmds.push(Command::Mark { cid });
                }
            }
            for &(cid, cpu, marked) in order.iter().skip(surplus) {
                if marked {
                    cmds.push(Command::Unmark { cid });
                }
                if self.reinflate && cpu != s.standard_cpu {
                    cmds.push(Command::Resize {
                        cid,
                        cpu: s.standard_cpu,
                    });
                }
            }
        } else {
            for &(cid, cpu, marked) in &s.containers {
                if marked {
                    cmds.push(Command::Unmark { cid });
                }
                if self.reinflate && cpu != s.standard_cpu && !d.hetero {
                    cmds.push(Command::Resize {
                        cid,
                        cpu: s.standard_cpu,
                    });
                }
            }
            for _ in current..target {
                cmds.push(Command::Create {
                    fn_id: s.fn_id,
                    cpu: s.standard_cpu,
                    mem: s.mem,
                });
            }
        }
        cmds
    }

    /// Execute a plan against the cluster. `now` is the simulated instant;
    /// new containers become ready after their function's cold-start
    /// latency. When a create does not fit, lazily-marked containers (any
    /// function) are terminated smallest-first to make room — the paper's
    /// lazy reclamation (§3.3).
    pub fn apply(&self, cluster: &mut Cluster, plan: &Plan, now: SimTime) -> ApplyOutcome {
        let mut out = ApplyOutcome::default();
        for cmd in &plan.commands {
            match *cmd {
                Command::Terminate { cid } => {
                    if let Ok(t) = cluster.terminate_container(cid, now) {
                        out.orphans.extend(t.orphans);
                        out.terminated.push(cid);
                    }
                }
                Command::Resize { cid, cpu } => {
                    // A failed up-resize (re-inflation) may be blocked by
                    // lazily-marked containers; reclaim them like a failed
                    // create would (§3.3).
                    loop {
                        match cluster.resize_container_cpu(cid, cpu) {
                            Ok(()) => break,
                            Err(_) => {
                                let victim = cluster
                                    .all_containers()
                                    .filter(|c| c.is_marked_for_termination() && c.id() != cid)
                                    .min_by_key(|c| (c.cpu(), c.id()))
                                    .map(|c| c.id());
                                match victim {
                                    Some(v) => {
                                        if let Ok(t) = cluster.terminate_container(v, now) {
                                            out.orphans.extend(t.orphans);
                                            out.terminated.push(v);
                                        }
                                    }
                                    None => {
                                        out.failed_resizes += 1;
                                        break;
                                    }
                                }
                            }
                        }
                    }
                }
                Command::Mark { cid } => {
                    if let Some(c) = cluster.container_mut(cid) {
                        c.set_marked_for_termination(true);
                    }
                }
                Command::Unmark { cid } => {
                    if let Some(c) = cluster.container_mut(cid) {
                        c.set_marked_for_termination(false);
                    }
                }
                Command::Create { fn_id, cpu, mem } => {
                    let rec = self.registry.get(fn_id);
                    let cold = rec.map_or(SimDuration::from_millis(500), |r| r.spec.cold_start);
                    let standard = rec.map_or(cpu, |r| r.spec.standard_cpu).max(cpu);
                    // Class-shaped demand vector: compute/memory classes
                    // reserve no bandwidth, so legacy specs place exactly
                    // as before.
                    let demand = rec.map_or_else(
                        || lass_cluster::ResourceVec::cpu_mem(cpu, mem),
                        |r| r.spec.class.demand(cpu, mem),
                    );
                    let ready = now + cold;
                    // Bounded retry: each make_room call either frees
                    // capacity or returns false.
                    let mut attempts = cluster.container_count() + 4;
                    loop {
                        match cluster.create_container_vec(fn_id, standard, demand, now, ready) {
                            Ok(cid) => {
                                out.created.push((cid, ready));
                                break;
                            }
                            Err(_) => {
                                attempts = attempts.saturating_sub(1);
                                if attempts == 0
                                    || !self
                                        .make_room(cluster, plan, fn_id, cpu, mem, now, &mut out)
                                {
                                    out.failed_creates += 1;
                                    break;
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

impl LassController {
    /// Free room for a `(cpu, mem)` reservation, §3.3/§4.2 style:
    ///
    /// 1. terminate the smallest lazily-marked container (lazy reclamation);
    /// 2. under overload with the deflation policy: pick one node and
    ///    deflate containers of *over-budget* functions there — each by at
    ///    most `τ` below its standard size, and never taking more than the
    ///    function's excess over its fair-share-adjusted budget — until the
    ///    reservation fits ("in small increments … until sufficient
    ///    resources have been reclaimed");
    /// 3. if deflation cannot free enough anywhere, terminate the smallest
    ///    container of the most over-budget function (§4.2's fallback).
    ///
    /// Returns whether any capacity was freed.
    #[allow(clippy::too_many_arguments)]
    fn make_room(
        &self,
        cluster: &mut Cluster,
        plan: &Plan,
        requester: FnId,
        cpu: lass_cluster::CpuMilli,
        mem: lass_cluster::MemMib,
        now: SimTime,
        out: &mut ApplyOutcome,
    ) -> bool {
        // 1. Marked (lazily terminated) containers go first.
        let victim = cluster
            .all_containers()
            .filter(|c| c.is_marked_for_termination())
            .min_by_key(|c| (c.cpu(), c.id()))
            .map(|c| c.id());
        if let Some(v) = victim {
            if let Ok(t) = cluster.terminate_container(v, now) {
                out.orphans.extend(t.orphans);
                out.terminated.push(v);
                return true;
            }
        }
        if !(plan.overloaded && self.cfg.reclamation == ReclamationPolicy::Deflation) {
            return false;
        }
        let tau = self.cfg.deflation_max;
        // CPU each function still holds beyond its adjusted budget.
        let mut over_budget: std::collections::BTreeMap<FnId, f64> = plan
            .adjusted_cpu
            .iter()
            .filter(|&(&f, _)| f != requester)
            .map(|(&f, &adj)| (f, f64::from(cluster.fn_cpu(f).0) - adj))
            .filter(|&(_, o)| o > 0.0)
            .collect();

        // 2. Find the node where free + reclaimable covers the request
        //    (smallest sufficient total, best-fit style).
        let mut best: Option<(lass_cluster::NodeId, f64)> = None;
        for node in cluster.nodes() {
            if node.mem_free() < mem {
                continue;
            }
            let free = f64::from(node.cpu_free().0);
            let mut budgets = over_budget.clone();
            let mut reclaimable = 0.0;
            for c in cluster.all_containers().filter(|c| c.node() == node.id()) {
                let Some(b) = budgets.get_mut(&c.fn_id()) else {
                    continue;
                };
                let floor = f64::from(c.standard_cpu().0) * (1.0 - tau);
                let headroom = (f64::from(c.cpu().0) - floor).max(0.0).min(*b);
                reclaimable += headroom;
                *b -= headroom;
            }
            let total = free + reclaimable;
            if total + 1e-9 >= f64::from(cpu.0) {
                match best {
                    Some((_, t)) if t <= total => {}
                    _ => best = Some((node.id(), total)),
                }
            }
        }
        if let Some((node_id, _)) = best {
            let mut short =
                f64::from(cpu.0) - f64::from(cluster.nodes()[node_id.0 as usize].cpu_free().0);
            // Deflate containers on this node, largest headroom first.
            let mut candidates: Vec<(lass_cluster::ContainerId, FnId, f64)> = cluster
                .all_containers()
                .filter(|c| c.node() == node_id)
                .filter_map(|c| {
                    let b = over_budget.get(&c.fn_id()).copied().unwrap_or(0.0);
                    if b <= 0.0 {
                        return None;
                    }
                    let floor = f64::from(c.standard_cpu().0) * (1.0 - tau);
                    let headroom = (f64::from(c.cpu().0) - floor).max(0.0);
                    (headroom > 0.0).then_some((c.id(), c.fn_id(), headroom))
                })
                .collect();
            candidates.sort_by(|a, b| {
                b.2.partial_cmp(&a.2)
                    .expect("finite headroom")
                    .then(a.0.cmp(&b.0))
            });
            for (cid, f, headroom) in candidates {
                if short <= 0.0 {
                    break;
                }
                let budget = over_budget.get_mut(&f).expect("candidate has budget");
                let take = headroom.min(*budget).min(short).ceil();
                if take < 1.0 {
                    continue;
                }
                let cur = cluster.container(cid).expect("live").cpu();
                let new_cpu = lass_cluster::CpuMilli(cur.0.saturating_sub(take as u32).max(1));
                if cluster.resize_container_cpu(cid, new_cpu).is_ok() {
                    let freed = f64::from(cur.0 - new_cpu.0);
                    *budget -= freed;
                    short -= freed;
                }
            }
            if short <= 0.0 {
                return true;
            }
            // Fall through to forced termination if we somehow fell short.
        }
        // 3. Forced termination: the most over-budget function loses its
        //    smallest container.
        let victim_fn = over_budget
            .iter()
            .filter(|&(_, &o)| o > 0.0)
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(&f, _)| f);
        if let Some(f) = victim_fn {
            let victim = cluster
                .fn_containers(f)
                .min_by_key(|c| (c.cpu(), c.id()))
                .map(|c| c.id());
            if let Some(v) = victim {
                if let Ok(t) = cluster.terminate_container(v, now) {
                    out.orphans.extend(t.orphans);
                    out.terminated.push(v);
                    return true;
                }
            }
        }
        false
    }
}

impl DesiredAllocation {
    fn clamp_to_solver_cap(mut self, cap: u32, std_cpu: f64) -> Self {
        if self.count > cap {
            self.count = cap;
            self.cpu = self.cpu.min(f64::from(cap) * std_cpu);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lass_cluster::UserId;
    use lass_functions::{binary_alert, micro_benchmark, mobilenet_v2};

    fn controller_with(
        cfg: LassConfig,
        fns: Vec<(lass_functions::FunctionSpec, f64, f64, UserId)>,
    ) -> (LassController, Vec<FnId>) {
        let mut reg = FunctionRegistry::new();
        let ids = fns
            .into_iter()
            .map(|(spec, slo, w, u)| reg.register(spec, slo, w, u))
            .collect();
        (LassController::new(cfg, reg), ids)
    }

    /// Feed `rate` req/s over (`from_secs`, `to_secs`] in monitor ticks.
    fn feed_rate(ctl: &mut LassController, fn_id: FnId, rate: f64, from_secs: f64, to_secs: f64) {
        let tick = ctl.cfg().monitor_interval_secs;
        let mut t = from_secs + tick;
        while t <= to_secs + 1e-9 {
            let mut m = BTreeMap::new();
            m.insert(fn_id, (rate * tick).round() as u64);
            ctl.on_monitor_tick(t, &m);
            t += tick;
        }
    }

    #[test]
    fn scales_up_for_load_and_down_when_it_stops() {
        let mut cluster = Cluster::paper_testbed();
        let (mut ctl, ids) = controller_with(
            LassConfig::default(),
            vec![(micro_benchmark(0.1), 0.1, 1.0, UserId(0))],
        );
        let f = ids[0];
        feed_rate(&mut ctl, f, 20.0, 0.0, 120.0);
        let plan = ctl.plan_epoch(&cluster, 120.0);
        assert!(!plan.overloaded);
        let creates = plan
            .commands
            .iter()
            .filter(|c| matches!(c, Command::Create { .. }))
            .count();
        assert!(
            creates >= 3,
            "20 req/s at mu=10 needs >2 containers, got {creates}"
        );
        let out = ctl.apply(&mut cluster, &plan, SimTime::from_secs(120));
        assert_eq!(out.created.len(), creates);
        assert_eq!(out.failed_creates, 0);
        cluster.check_invariants();

        // Load stops: the next epochs see zero arrivals.
        feed_rate(&mut ctl, f, 0.0, 120.0, 400.0);
        // EWMA needs a couple of epochs to decay.
        let mut marked = 0;
        for e in 0..5 {
            let plan = ctl.plan_epoch(&cluster, 400.0 + f64::from(e) * 10.0);
            ctl.apply(&mut cluster, &plan, SimTime::from_secs(400 + e as u64 * 10));
        }
        for c in cluster.all_containers() {
            if c.is_marked_for_termination() {
                marked += 1;
            }
        }
        assert!(
            marked >= creates - 1,
            "idle containers get marked: {marked}"
        );
        cluster.check_invariants();
    }

    #[test]
    fn marked_containers_are_reused_on_load_return() {
        let mut cluster = Cluster::paper_testbed();
        let (mut ctl, ids) = controller_with(
            LassConfig::default(),
            vec![(micro_benchmark(0.1), 0.1, 1.0, UserId(0))],
        );
        let f = ids[0];
        feed_rate(&mut ctl, f, 20.0, 0.0, 120.0);
        let plan = ctl.plan_epoch(&cluster, 120.0);
        ctl.apply(&mut cluster, &plan, SimTime::from_secs(120));
        let n_before = cluster.fn_container_count(f);

        // Dip, then return.
        feed_rate(&mut ctl, f, 0.0, 120.0, 400.0);
        for e in 0..5 {
            let p = ctl.plan_epoch(&cluster, 400.0 + f64::from(e) * 10.0);
            ctl.apply(&mut cluster, &p, SimTime::from_secs(400 + e as u64 * 10));
        }
        assert_eq!(
            cluster.fn_container_count(f),
            n_before,
            "lazy marks keep containers alive"
        );
        feed_rate(&mut ctl, f, 20.0, 400.0 + 50.0, 600.0);
        let p = ctl.plan_epoch(&cluster, 600.0);
        let unmarks = p
            .commands
            .iter()
            .filter(|c| matches!(c, Command::Unmark { .. }))
            .count();
        assert!(unmarks > 0, "returning load reuses marked containers");
        ctl.apply(&mut cluster, &p, SimTime::from_secs(600));
        // The EWMA may not have fully recovered, so at most one container
        // can remain marked.
        let still_marked = cluster
            .all_containers()
            .filter(|c| c.is_marked_for_termination())
            .count();
        assert!(still_marked <= 1, "still marked: {still_marked}");
    }

    #[test]
    fn overload_triggers_fair_share_and_deflation() {
        let mut cluster = Cluster::paper_testbed(); // 12000 milli total
        let mut cfg = LassConfig::default();
        cfg.reclamation = ReclamationPolicy::Deflation;
        let (mut ctl, ids) = controller_with(
            cfg,
            vec![
                (binary_alert(), 0.1, 1.0, UserId(0)),
                (mobilenet_v2(), 0.1, 1.0, UserId(1)),
            ],
        );
        let (ba, mn) = (ids[0], ids[1]);
        // Phase 1: only MobileNet runs; it grows past its fair share.
        for t in 1..=24 {
            let now = f64::from(t) * 5.0;
            let mut m = BTreeMap::new();
            m.insert(mn, 50); // 10 req/s at mu=4 -> ~8000+ milli desired
            ctl.on_monitor_tick(now, &m);
        }
        let p1 = ctl.plan_epoch(&cluster, 120.0);
        assert!(!p1.overloaded);
        ctl.apply(&mut cluster, &p1, SimTime::from_secs(120));
        let mn_before = cluster.fn_cpu(mn);
        assert!(
            mn_before.0 > 6000,
            "MobileNet exceeds fair share: {mn_before}"
        );
        assert!(cluster.fn_containers(mn).all(|c| !c.is_deflated()));

        // Phase 2: BinaryAlert bursts; the cluster overloads and BA's
        // standard-size creates must reclaim space by deflating MobileNet.
        for t in 25..=48 {
            let now = f64::from(t) * 5.0;
            let mut m = BTreeMap::new();
            m.insert(ba, 1400); // 280 req/s
            m.insert(mn, 50);
            ctl.on_monitor_tick(now, &m);
        }
        let p2 = ctl.plan_epoch(&cluster, 240.0);
        assert!(
            p2.overloaded,
            "demand must exceed capacity: {:?}",
            p2.desired_cpu
        );
        let total: f64 = p2.adjusted_cpu.values().sum();
        assert!(total <= 12_000.0 + 1e-6);
        for f in [ba, mn] {
            let floor = 6000.0f64.min(p2.desired_cpu[&f]);
            assert!(
                p2.adjusted_cpu[&f] + 1e-6 >= floor,
                "{f}: adjusted {} < floor {floor}",
                p2.adjusted_cpu[&f]
            );
        }
        let out = ctl.apply(&mut cluster, &p2, SimTime::from_secs(240));
        cluster.check_invariants();
        // On-demand reclamation deflated MobileNet's fleet.
        let deflated = cluster
            .fn_containers(mn)
            .filter(|c| c.is_deflated())
            .count();
        assert!(deflated > 0, "deflation policy deflates the over-budget fn");
        for c in cluster.all_containers() {
            assert!(c.deflation_ratio() <= 0.30 + 1e-9);
        }
        // MobileNet keeps at least its fair-share-adjusted capacity.
        assert!(
            f64::from(cluster.fn_cpu(mn).0) + 1e-6 >= p2.adjusted_cpu[&mn] - 2000.0,
            "MobileNet kept {} of adjusted {}",
            cluster.fn_cpu(mn),
            p2.adjusted_cpu[&mn]
        );
        // BinaryAlert got room for its standard-size containers.
        assert!(
            cluster.fn_cpu(ba).0 >= 5000,
            "BA allocation {} too small",
            cluster.fn_cpu(ba)
        );
        let _ = out;
    }

    #[test]
    fn overload_with_termination_keeps_whole_containers() {
        let mut cluster = Cluster::paper_testbed();
        let mut cfg = LassConfig::default();
        cfg.reclamation = ReclamationPolicy::Termination;
        let (mut ctl, ids) = controller_with(
            cfg,
            vec![
                (binary_alert(), 0.1, 1.0, UserId(0)),
                (mobilenet_v2(), 0.1, 1.0, UserId(1)),
            ],
        );
        for t in 1..=24 {
            let now = f64::from(t) * 5.0;
            let mut m = BTreeMap::new();
            m.insert(ids[0], 1400);
            m.insert(ids[1], 60);
            ctl.on_monitor_tick(now, &m);
        }
        let plan = ctl.plan_epoch(&cluster, 120.0);
        assert!(plan.overloaded);
        ctl.apply(&mut cluster, &plan, SimTime::from_secs(120));
        cluster.check_invariants();
        for c in cluster.all_containers() {
            assert!(!c.is_deflated(), "termination policy never deflates");
        }
    }

    #[test]
    fn autoscale_off_produces_empty_plan() {
        let cluster = Cluster::paper_testbed();
        let mut cfg = LassConfig::default();
        cfg.autoscale = false;
        let (mut ctl, _) = controller_with(cfg, vec![(micro_benchmark(0.1), 0.1, 1.0, UserId(0))]);
        let plan = ctl.plan_epoch(&cluster, 60.0);
        assert!(plan.commands.is_empty());
    }

    #[test]
    fn burst_reaction_uses_short_window() {
        let mut cluster = Cluster::paper_testbed();
        let (mut ctl, ids) = controller_with(
            LassConfig::default(),
            vec![(micro_benchmark(0.1), 0.1, 1.0, UserId(0))],
        );
        let f = ids[0];
        feed_rate(&mut ctl, f, 5.0, 0.0, 200.0);
        let p = ctl.plan_epoch(&cluster, 200.0);
        ctl.apply(&mut cluster, &p, SimTime::from_secs(200));
        let small = cluster.fn_container_count(f);
        // 10x burst for one short window.
        let mut m = BTreeMap::new();
        m.insert(f, 250); // 50/s over 5s
        ctl.on_monitor_tick(205.0, &m);
        m.insert(f, 250);
        ctl.on_monitor_tick(210.0, &m);
        let p = ctl.plan_epoch(&cluster, 210.0);
        let creates = p
            .commands
            .iter()
            .filter(|c| matches!(c, Command::Create { .. }))
            .count();
        assert!(
            creates + small >= 6,
            "burst to 50/s must jump well past the smoothed level (creates={creates})"
        );
    }
}
