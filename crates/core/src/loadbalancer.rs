//! Request dispatch: weighted round robin over a function's containers.
//!
//! The LaSS load balancer "uses the weighted round robin (WRR) algorithm to
//! directly schedule function invocation requests to each individual
//! container", with weights reflecting container size (§5). We implement
//! *smooth* WRR (the nginx variant), which interleaves picks evenly rather
//! than emitting bursts per container, and an idle-first refinement that
//! prefers any idle container before queueing behind a busy one.

use lass_cluster::ContainerId;
use std::collections::BTreeMap;

/// Smooth weighted-round-robin picker. Keeps per-container state across
/// picks; containers may come and go between calls (state for vanished
/// containers is pruned, new ones start at zero credit).
#[derive(Debug, Clone, Default)]
pub struct SmoothWrr {
    credit: BTreeMap<ContainerId, f64>,
}

impl SmoothWrr {
    /// Fresh picker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pick one container from `candidates` (id + weight). Weights must be
    /// positive. Returns `None` on an empty candidate set.
    pub fn pick(&mut self, candidates: &[(ContainerId, f64)]) -> Option<ContainerId> {
        self.pick_from(candidates.iter().copied())
    }

    /// [`SmoothWrr::pick`] over any re-iterable candidate sequence —
    /// lets the dispatch hot path feed the cluster's incrementally
    /// maintained weighted index (optionally filtered down to its idle
    /// slots) straight into the picker, with no intermediate candidate
    /// buffer.
    ///
    /// Smooth WRR: every candidate's credit grows by its weight, the
    /// largest credit wins and is decremented by the total weight. Over `W`
    /// (total weight) consecutive picks each candidate is chosen
    /// proportionally to its weight, with the picks interleaved.
    pub fn pick_from<I>(&mut self, candidates: I) -> Option<ContainerId>
    where
        I: Iterator<Item = (ContainerId, f64)> + Clone,
    {
        // One prefix pass measures the sequence and totals the weights
        // (left-to-right, matching the historical `.sum()` bit-for-bit).
        let (count, total) = candidates
            .clone()
            .fold((0usize, 0.0f64), |(n, t), (_, w)| (n + 1, t + w));
        if count == 0 {
            return None;
        }
        debug_assert!(candidates.clone().all(|(_, w)| w > 0.0));
        // Prune state for containers no longer offered.
        if self.credit.len() > count * 2 {
            let alive: std::collections::BTreeSet<ContainerId> =
                candidates.clone().map(|(c, _)| c).collect();
            self.credit.retain(|c, _| alive.contains(c));
        }
        let mut best: Option<(ContainerId, f64)> = None;
        for (cid, w) in candidates {
            let credit = self.credit.entry(cid).or_insert(0.0);
            *credit += w;
            match best {
                None => best = Some((cid, *credit)),
                Some((_, b)) if *credit > b => best = Some((cid, *credit)),
                _ => {}
            }
        }
        let (winner, _) = best.expect("non-empty candidates");
        *self.credit.get_mut(&winner).expect("winner has credit") -= total;
        Some(winner)
    }

    /// Drop all accumulated credit.
    pub fn reset(&mut self) {
        self.credit.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_picks(
        wrr: &mut SmoothWrr,
        candidates: &[(ContainerId, f64)],
        n: usize,
    ) -> BTreeMap<ContainerId, usize> {
        let mut counts = BTreeMap::new();
        for _ in 0..n {
            let c = wrr.pick(candidates).unwrap();
            *counts.entry(c).or_insert(0) += 1;
        }
        counts
    }

    #[test]
    fn equal_weights_round_robin() {
        let mut wrr = SmoothWrr::new();
        let cands = [
            (ContainerId(0), 1.0),
            (ContainerId(1), 1.0),
            (ContainerId(2), 1.0),
        ];
        let counts = count_picks(&mut wrr, &cands, 300);
        for c in 0..3 {
            assert_eq!(counts[&ContainerId(c)], 100);
        }
    }

    #[test]
    fn weights_respected_proportionally() {
        let mut wrr = SmoothWrr::new();
        // Weights 5:3:2 over 1000 picks.
        let cands = [
            (ContainerId(0), 5.0),
            (ContainerId(1), 3.0),
            (ContainerId(2), 2.0),
        ];
        let counts = count_picks(&mut wrr, &cands, 1000);
        assert_eq!(counts[&ContainerId(0)], 500);
        assert_eq!(counts[&ContainerId(1)], 300);
        assert_eq!(counts[&ContainerId(2)], 200);
    }

    #[test]
    fn smooth_interleaving_no_bursts() {
        let mut wrr = SmoothWrr::new();
        // 2:1 weights: the heavy container must never be picked 3x in a row.
        let cands = [(ContainerId(0), 2.0), (ContainerId(1), 1.0)];
        let mut run = 0;
        for _ in 0..300 {
            if wrr.pick(&cands).unwrap() == ContainerId(0) {
                run += 1;
                assert!(run <= 2, "burst of heavy container");
            } else {
                run = 0;
            }
        }
    }

    #[test]
    fn deflated_container_receives_less_traffic() {
        let mut wrr = SmoothWrr::new();
        // A 70%-deflated container (700 milli) next to a standard (1000).
        let cands = [(ContainerId(0), 1000.0), (ContainerId(1), 700.0)];
        let counts = count_picks(&mut wrr, &cands, 1700);
        assert_eq!(counts[&ContainerId(0)], 1000);
        assert_eq!(counts[&ContainerId(1)], 700);
    }

    #[test]
    fn candidate_churn_is_tolerated() {
        let mut wrr = SmoothWrr::new();
        let a = [(ContainerId(0), 1.0), (ContainerId(1), 1.0)];
        for _ in 0..10 {
            wrr.pick(&a).unwrap();
        }
        // Container 1 disappears; a new container 2 appears.
        let b = [(ContainerId(0), 1.0), (ContainerId(2), 1.0)];
        let counts = count_picks(&mut wrr, &b, 100);
        assert!(counts[&ContainerId(0)] >= 49 && counts[&ContainerId(0)] <= 51);
        assert!(counts[&ContainerId(2)] >= 49);
    }

    #[test]
    fn empty_candidates_yield_none() {
        let mut wrr = SmoothWrr::new();
        assert_eq!(wrr.pick(&[]), None);
    }

    #[test]
    fn single_candidate_always_wins() {
        let mut wrr = SmoothWrr::new();
        let cands = [(ContainerId(9), 0.4)];
        for _ in 0..10 {
            assert_eq!(wrr.pick(&cands), Some(ContainerId(9)));
        }
    }

    #[test]
    fn reset_clears_credit() {
        let mut wrr = SmoothWrr::new();
        let cands = [(ContainerId(0), 3.0), (ContainerId(1), 1.0)];
        wrr.pick(&cands);
        wrr.reset();
        assert!(wrr.credit.is_empty());
    }
}
