//! # lass-core — the LaSS controller
//!
//! The paper's primary contribution (Wang, Ali-Eldin, Shenoy, HPDC '21):
//! model-driven resource allocation for latency-sensitive serverless
//! functions on a resource-constrained edge cluster, with weighted
//! fair-share allocation and container-reclamation policies under
//! overload.
//!
//! Module map (paper section in parentheses):
//!
//! * [`config`] — all knobs with the paper's defaults.
//! * [`registry`] — function registration: CPU+memory sizing, SLOs,
//!   weights, users (§5).
//! * [`tree`] — hierarchical scheduling tree for fair-share weights (§5).
//! * [`model`] — per-function desired allocation via the queueing models
//!   (§3.1–3.3).
//! * [`predictor`] — pluggable arrival-rate predictors (§5): the paper's
//!   burst-aware dual windows (default), Holt trend extrapolation, peak
//!   hold.
//! * [`fairshare`] — Eq. 7–8 with Lemmas 1–2, plus a non-wasteful
//!   water-filling refinement (§4.1).
//! * [`reclaim`] — termination and deflation reclamation policies (§4.2).
//! * [`loadbalancer`] — smooth weighted round robin over containers (§5).
//! * [`controller`] — the epoch loop tying it together; command executor
//!   with lazy termination (§3.3).
//! * [`simulation`] — the LaSS scheduling policy plugged into the shared
//!   discrete-event engine (`lass_simcore::engine`): end-to-end
//!   deterministic simulation of a LaSS cluster (the evaluation
//!   substrate).
//! * [`staticalloc`] — a static-allocation round-robin policy on the same
//!   engine: the "provisioned-for-peak" baseline, and proof that new
//!   schedulers are ~100-line plugins.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod commands;
pub mod config;
pub mod controller;
pub mod fairshare;
pub mod federated;
pub mod knative;
pub mod loadbalancer;
pub mod model;
pub mod predictor;
pub mod reclaim;
pub mod registry;
pub mod simulation;
pub mod staticalloc;
pub mod tree;

pub use commands::{Command, Plan};
pub use config::{DispatchPolicy, LassConfig, ReclamationPolicy, ScalerKind};
pub use controller::{ApplyOutcome, LassController};
pub use fairshare::{fair_share, fair_share_paper, guaranteed_shares, is_overloaded, ShareRequest};
pub use federated::{FederatedSimReport, FederatedSimulation, SitePolicyKind};
pub use knative::KnativeSimulation;
pub use loadbalancer::SmoothWrr;
pub use model::{desired_allocation, wait_budget_for, DesiredAllocation, ModelError};
pub use predictor::{BurstAwarePredictor, HoltPredictor, PeakPredictor, Predictor, PredictorKind};
pub use reclaim::{deflation_commands, termination_commands, FnSnapshot};
pub use registry::{FunctionRecord, FunctionRegistry};
pub use simulation::{FnReport, FunctionSetup, SimReport, Simulation};
pub use staticalloc::StaticRrSimulation;
pub use tree::WeightTree;
