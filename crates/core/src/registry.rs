//! Function registration: SLOs, weights, and ownership.
//!
//! LaSS extends OpenWhisk so users specify both CPU and memory per function
//! (§5) and attaches weights to users (namespaces) and actions for the
//! hierarchical fair-share tree.

use crate::tree::WeightTree;
use lass_cluster::{FnId, UserId};
use lass_functions::FunctionSpec;
use std::collections::BTreeMap;

/// A registered function: spec + SLO + scheduling weight + owner.
#[derive(Debug, Clone)]
pub struct FunctionRecord {
    /// The function's id.
    pub fn_id: FnId,
    /// Runtime characteristics (Table 1 entry or custom).
    pub spec: FunctionSpec,
    /// SLO deadline in seconds (§6.1 default: 100 ms on waiting time).
    pub slo_deadline: f64,
    /// Weight relative to the owner's other functions.
    pub weight: f64,
    /// Owning user (namespace).
    pub user: UserId,
}

/// The set of functions hosted on the cluster, plus user weights.
#[derive(Debug, Clone, Default)]
pub struct FunctionRegistry {
    fns: BTreeMap<FnId, FunctionRecord>,
    users: BTreeMap<UserId, f64>,
    next: u32,
}

impl FunctionRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set (or update) a user's weight (default 1.0 on first function).
    pub fn set_user_weight(&mut self, user: UserId, weight: f64) {
        assert!(weight.is_finite() && weight > 0.0, "invalid user weight");
        self.users.insert(user, weight);
    }

    /// Register a function; returns its id.
    pub fn register(
        &mut self,
        spec: FunctionSpec,
        slo_deadline: f64,
        weight: f64,
        user: UserId,
    ) -> FnId {
        assert!(
            slo_deadline > 0.0 && slo_deadline.is_finite(),
            "invalid SLO"
        );
        assert!(weight > 0.0 && weight.is_finite(), "invalid weight");
        let fn_id = FnId(self.next);
        self.next += 1;
        self.users.entry(user).or_insert(1.0);
        self.fns.insert(
            fn_id,
            FunctionRecord {
                fn_id,
                spec,
                slo_deadline,
                weight,
                user,
            },
        );
        fn_id
    }

    /// Look up a function.
    pub fn get(&self, fn_id: FnId) -> Option<&FunctionRecord> {
        self.fns.get(&fn_id)
    }

    /// All registered functions in id order.
    pub fn iter(&self) -> impl Iterator<Item = &FunctionRecord> {
        self.fns.values()
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    /// Whether no functions are registered.
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }

    /// Build the two-level scheduling tree: users weighted against each
    /// other, functions weighted within their user (§5).
    pub fn weight_tree(&self) -> WeightTree {
        let mut by_user: BTreeMap<UserId, Vec<(FnId, f64)>> = BTreeMap::new();
        for rec in self.fns.values() {
            by_user
                .entry(rec.user)
                .or_default()
                .push((rec.fn_id, rec.weight));
        }
        WeightTree::two_level(
            by_user
                .into_iter()
                .map(|(u, fns)| (self.users.get(&u).copied().unwrap_or(1.0), fns)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lass_functions::{binary_alert, mobilenet_v2};

    #[test]
    fn register_assigns_sequential_ids() {
        let mut reg = FunctionRegistry::new();
        let a = reg.register(binary_alert(), 0.1, 1.0, UserId(0));
        let b = reg.register(mobilenet_v2(), 0.1, 1.0, UserId(0));
        assert_eq!(a, FnId(0));
        assert_eq!(b, FnId(1));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get(a).unwrap().spec.name, "BinaryAlert");
    }

    #[test]
    fn weight_tree_reflects_user_weights() {
        let mut reg = FunctionRegistry::new();
        reg.set_user_weight(UserId(1), 1.0);
        reg.set_user_weight(UserId(2), 2.0);
        let a = reg.register(binary_alert(), 0.1, 1.0, UserId(1));
        let b = reg.register(mobilenet_v2(), 0.1, 1.0, UserId(2));
        let c = reg.register(binary_alert(), 0.1, 1.0, UserId(2));
        let w = reg.weight_tree().effective_weights();
        assert!((w[&a] - 1.0 / 3.0).abs() < 1e-12);
        assert!((w[&b] - 1.0 / 3.0).abs() < 1e-12);
        assert!((w[&c] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn function_weights_within_user() {
        let mut reg = FunctionRegistry::new();
        let a = reg.register(binary_alert(), 0.1, 3.0, UserId(0));
        let b = reg.register(mobilenet_v2(), 0.1, 1.0, UserId(0));
        let w = reg.weight_tree().effective_weights();
        assert!((w[&a] - 0.75).abs() < 1e-12);
        assert!((w[&b] - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid SLO")]
    fn zero_slo_rejected() {
        let mut reg = FunctionRegistry::new();
        reg.register(binary_alert(), 0.0, 1.0, UserId(0));
    }
}
