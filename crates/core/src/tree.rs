//! Hierarchical scheduling tree (§5).
//!
//! LaSS adds weights to both users (namespaces) and actions, forming a
//! two-level hierarchy that determines each function's fair share; "our
//! model can be extended to a hierarchical scheduling tree with arbitrary
//! levels". This module implements the general tree: a leaf's effective
//! weight is the product along its path of `weight / Σ sibling weights`,
//! so effective weights over all leaves sum to 1.

use lass_cluster::FnId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A node of the scheduling tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WeightTree {
    /// An interior node (e.g. a user/namespace) with a weight relative to
    /// its siblings.
    Group {
        /// Weight relative to siblings.
        weight: f64,
        /// Children (sub-groups or functions).
        children: Vec<WeightTree>,
    },
    /// A function leaf.
    Leaf {
        /// Weight relative to siblings.
        weight: f64,
        /// The function this leaf allocates for.
        fn_id: FnId,
    },
}

impl WeightTree {
    /// A single-level tree: functions directly under the root with the
    /// given weights.
    pub fn flat(weights: impl IntoIterator<Item = (FnId, f64)>) -> Self {
        WeightTree::Group {
            weight: 1.0,
            children: weights
                .into_iter()
                .map(|(fn_id, weight)| WeightTree::Leaf { weight, fn_id })
                .collect(),
        }
    }

    /// The paper's two-level shape: users with weights, each owning
    /// functions with weights.
    ///
    /// ```
    /// use lass_core::WeightTree;
    /// use lass_cluster::FnId;
    ///
    /// // User 2 pays for twice user 1's share; each owns one function.
    /// let tree = WeightTree::two_level([
    ///     (1.0, vec![(FnId(0), 1.0)]),
    ///     (2.0, vec![(FnId(1), 1.0)]),
    /// ]);
    /// let w = tree.effective_weights();
    /// assert!((w[&FnId(0)] - 1.0 / 3.0).abs() < 1e-12);
    /// assert!((w[&FnId(1)] - 2.0 / 3.0).abs() < 1e-12);
    /// ```
    pub fn two_level(users: impl IntoIterator<Item = (f64, Vec<(FnId, f64)>)>) -> Self {
        WeightTree::Group {
            weight: 1.0,
            children: users
                .into_iter()
                .map(|(uw, fns)| WeightTree::Group {
                    weight: uw,
                    children: fns
                        .into_iter()
                        .map(|(fn_id, weight)| WeightTree::Leaf { weight, fn_id })
                        .collect(),
                })
                .collect(),
        }
    }

    fn weight(&self) -> f64 {
        match self {
            WeightTree::Group { weight, .. } | WeightTree::Leaf { weight, .. } => *weight,
        }
    }

    /// Effective weight fractions per function. Fractions sum to 1 (when
    /// the tree has at least one leaf and all weights are positive).
    pub fn effective_weights(&self) -> BTreeMap<FnId, f64> {
        let mut out = BTreeMap::new();
        self.walk(1.0, &mut out);
        out
    }

    fn walk(&self, fraction: f64, out: &mut BTreeMap<FnId, f64>) {
        match self {
            WeightTree::Leaf { fn_id, .. } => {
                *out.entry(*fn_id).or_insert(0.0) += fraction;
            }
            WeightTree::Group { children, .. } => {
                let total: f64 = children.iter().map(WeightTree::weight).sum();
                if total <= 0.0 {
                    return;
                }
                for child in children {
                    child.walk(fraction * child.weight() / total, out);
                }
            }
        }
    }

    /// Effective weights restricted to `active` functions, renormalized to
    /// sum to 1 over them (inactive functions forfeit their share for the
    /// epoch, as idle functions need no capacity).
    pub fn effective_weights_among(
        &self,
        active: impl IntoIterator<Item = FnId>,
    ) -> BTreeMap<FnId, f64> {
        let all = self.effective_weights();
        let mut out: BTreeMap<FnId, f64> = active
            .into_iter()
            .filter_map(|f| all.get(&f).map(|w| (f, *w)))
            .collect();
        let total: f64 = out.values().sum();
        if total > 0.0 {
            for w in out.values_mut() {
                *w /= total;
            }
        }
        out
    }

    /// Validate: weights non-negative and finite, at least one leaf.
    pub fn validate(&self) -> Result<(), String> {
        let mut leaves = 0usize;
        self.validate_walk(&mut leaves)?;
        if leaves == 0 {
            return Err("tree has no function leaves".into());
        }
        Ok(())
    }

    fn validate_walk(&self, leaves: &mut usize) -> Result<(), String> {
        let w = self.weight();
        if !(w.is_finite() && w >= 0.0) {
            return Err(format!("invalid weight {w}"));
        }
        match self {
            WeightTree::Leaf { .. } => {
                *leaves += 1;
                Ok(())
            }
            WeightTree::Group { children, .. } => {
                for c in children {
                    c.validate_walk(leaves)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_tree_splits_by_weight() {
        let t = WeightTree::flat([(FnId(0), 1.0), (FnId(1), 1.0)]);
        let w = t.effective_weights();
        assert!((w[&FnId(0)] - 0.5).abs() < 1e-12);
        assert!((w[&FnId(1)] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn flat_tree_unequal_weights() {
        let t = WeightTree::flat([(FnId(0), 3.0), (FnId(1), 1.0)]);
        let w = t.effective_weights();
        assert!((w[&FnId(0)] - 0.75).abs() < 1e-12);
        assert!((w[&FnId(1)] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn two_level_matches_fig9_setup() {
        // User 2 has twice the weight of user 1; each owns 3 equal
        // functions => user-1 fns get 1/9 each, user-2 fns get 2/9.
        let t = WeightTree::two_level([
            (1.0, vec![(FnId(0), 1.0), (FnId(1), 1.0), (FnId(2), 1.0)]),
            (2.0, vec![(FnId(3), 1.0), (FnId(4), 1.0), (FnId(5), 1.0)]),
        ]);
        let w = t.effective_weights();
        for i in 0..3 {
            assert!((w[&FnId(i)] - 1.0 / 9.0).abs() < 1e-12);
        }
        for i in 3..6 {
            assert!((w[&FnId(i)] - 2.0 / 9.0).abs() < 1e-12);
        }
        let total: f64 = w.values().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arbitrary_depth() {
        let t = WeightTree::Group {
            weight: 1.0,
            children: vec![
                WeightTree::Group {
                    weight: 1.0,
                    children: vec![WeightTree::Group {
                        weight: 1.0,
                        children: vec![WeightTree::Leaf {
                            weight: 1.0,
                            fn_id: FnId(7),
                        }],
                    }],
                },
                WeightTree::Leaf {
                    weight: 1.0,
                    fn_id: FnId(8),
                },
            ],
        };
        let w = t.effective_weights();
        assert!((w[&FnId(7)] - 0.5).abs() < 1e-12);
        assert!((w[&FnId(8)] - 0.5).abs() < 1e-12);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn renormalization_among_active() {
        let t = WeightTree::two_level([(1.0, vec![(FnId(0), 1.0)]), (2.0, vec![(FnId(1), 1.0)])]);
        let w = t.effective_weights_among([FnId(1)]);
        assert_eq!(w.len(), 1);
        assert!((w[&FnId(1)] - 1.0).abs() < 1e-12);
        // Both active: 1/3 vs 2/3.
        let w = t.effective_weights_among([FnId(0), FnId(1)]);
        assert!((w[&FnId(0)] - 1.0 / 3.0).abs() < 1e-12);
        assert!((w[&FnId(1)] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_empty_and_bad_weights() {
        let empty = WeightTree::Group {
            weight: 1.0,
            children: vec![],
        };
        assert!(empty.validate().is_err());
        let bad = WeightTree::flat([(FnId(0), f64::NAN)]);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn duplicate_leaves_accumulate() {
        let t = WeightTree::flat([(FnId(0), 1.0), (FnId(0), 1.0)]);
        let w = t.effective_weights();
        assert!((w[&FnId(0)] - 1.0).abs() < 1e-12);
    }
}
