//! Control-plane commands.
//!
//! The LaSS module in the controller "has direct control over all
//! containers in the system" (§5): each epoch it emits a batch of container
//! operations which the (simplified) invokers execute verbatim.

use lass_cluster::{ContainerId, CpuMilli, FnId, MemMib};
use serde::{Deserialize, Serialize};

/// One container operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Command {
    /// Start a new container for `fn_id` with the given allocation (`cpu`
    /// may be below the standard size: the deflation policy can create
    /// deflated containers to use fragments).
    Create {
        /// Function to host.
        fn_id: FnId,
        /// CPU allocation for the new container.
        cpu: CpuMilli,
        /// Memory allocation for the new container.
        mem: MemMib,
    },
    /// Mark a container for lazy termination (§3.3): it keeps serving and
    /// is reclaimed only when its capacity is needed.
    Mark {
        /// Container to mark.
        cid: ContainerId,
    },
    /// Clear a lazy-termination mark (load rose again; reuse the container).
    Unmark {
        /// Container to unmark.
        cid: ContainerId,
    },
    /// Terminate a container immediately.
    Terminate {
        /// Container to terminate.
        cid: ContainerId,
    },
    /// Resize a container's CPU in place (deflate or re-inflate).
    Resize {
        /// Container to resize.
        cid: ContainerId,
        /// New CPU allocation.
        cpu: CpuMilli,
    },
}

impl Command {
    /// Whether this command releases capacity (executed before growth).
    pub fn is_shrink(&self) -> bool {
        matches!(self, Command::Terminate { .. } | Command::Mark { .. })
    }
}

/// The controller's decision for one epoch.
#[derive(Debug, Clone, Default)]
pub struct Plan {
    /// Container operations, ordered so capacity-releasing operations come
    /// first.
    pub commands: Vec<Command>,
    /// Whether the epoch was planned under overload (fair-share mode).
    pub overloaded: bool,
    /// Desired CPU (milli) per function, as computed by the models.
    pub desired_cpu: std::collections::BTreeMap<FnId, f64>,
    /// Adjusted CPU (milli) per function after fair share (equals desired
    /// when not overloaded).
    pub adjusted_cpu: std::collections::BTreeMap<FnId, f64>,
    /// Total model-solver iterations this epoch (Fig. 5 reporting).
    pub solver_iterations: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrink_classification() {
        assert!(Command::Terminate {
            cid: ContainerId(1)
        }
        .is_shrink());
        assert!(Command::Mark {
            cid: ContainerId(1)
        }
        .is_shrink());
        assert!(!Command::Create {
            fn_id: FnId(0),
            cpu: CpuMilli(100),
            mem: MemMib(128)
        }
        .is_shrink());
        assert!(!Command::Resize {
            cid: ContainerId(1),
            cpu: CpuMilli(700)
        }
        .is_shrink());
    }
}
