//! Federated simulation: a [`Topology`] of cluster sites behind a
//! front-end router, each running its own scheduler instance.
//!
//! This is the harness tying the layers together: `lass-cluster`'s
//! [`Topology`] describes the fleet, `lass-simcore`'s
//! [`Federation`] meta-policy multiplexes one event pump across the
//! per-site schedulers, and a [`RouterKind`] decides where each arrival
//! goes (with the network hop added to its response time). Any of the
//! `SimReport`-shaped schedulers — the LaSS controller, static
//! round-robin, or the Knative-style concurrency scaler — can serve as
//! the per-site policy.
//!
//! A single-site topology with zero latency is the degenerate case and
//! reproduces the corresponding plain single-cluster simulation
//! event-for-event (the golden-parity tests pin this).
//!
//! Every federated run goes through a
//! [`ChaosPolicy`](lass_simcore::ChaosPolicy) wrapper. With the default
//! (empty) [`ChaosConfig`] the wrapper is transparent — the goldens pin
//! that — and [`FederatedSimulation::set_chaos`] arms site crashes,
//! router↔site partitions, container-crash bursts, and cross-site
//! migration of a dead site's orphans. Crashed sites recover *cold*:
//! the per-site scheduler is rebuilt from the original provisioning
//! (initial containers, fresh controller state), with its crash RNG
//! stream relabelled per restart so replays stay deterministic.

use crate::config::LassConfig;
use crate::knative::KnativePolicy;
use crate::simulation::{FunctionSetup, LassPolicy, SimReport};
use crate::staticalloc::StaticRrPolicy;
use lass_cluster::{Cluster, FnId, Topology};
use lass_simcore::{
    run_federation_parallel, run_simulation, ChaosConfig, ChaosPolicy, ContainerChaos,
    EngineConfig, FedFunction, FederatedReport, Federation, FunctionEntry, HedgeConfig,
    RouterConfig, RouterKind, SimDuration, SiteMeta, TelemetryConfig,
};

/// The report of a federated run: one [`SimReport`] per site plus the
/// engine's cross-site aggregate statistics.
pub type FederatedSimReport = FederatedReport<SimReport>;

/// Which scheduler runs on every site of a federated topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SitePolicyKind {
    /// The LaSS controller (default).
    #[default]
    Lass,
    /// Static allocation with round-robin dispatch.
    StaticRr,
    /// The Knative-style concurrency-target autoscaler.
    Knative,
}

/// A simulation over a federated [`Topology`].
pub struct FederatedSimulation {
    cfg: LassConfig,
    topology: Topology,
    seed: u64,
    router: RouterKind,
    router_cfg: RouterConfig,
    telemetry: TelemetryConfig,
    reconciler_target: Option<f64>,
    hedge: Option<HedgeConfig>,
    policy: SitePolicyKind,
    chaos: ChaosConfig,
    parallel: Option<usize>,
    multidim: Option<bool>,
    setups: Vec<FunctionSetup>,
}

impl FederatedSimulation {
    /// Create a federated simulation (round-robin router, LaSS sites,
    /// no chaos by default).
    pub fn new(cfg: LassConfig, topology: Topology, seed: u64) -> Self {
        cfg.validate().expect("invalid LassConfig");
        Self {
            cfg,
            topology,
            seed,
            router: RouterKind::default(),
            router_cfg: RouterConfig::default(),
            telemetry: TelemetryConfig::default(),
            reconciler_target: None,
            hedge: None,
            policy: SitePolicyKind::default(),
            chaos: ChaosConfig::default(),
            parallel: None,
            multidim: None,
            setups: Vec::new(),
        }
    }

    /// Choose the front-end router.
    pub fn set_router(&mut self, router: RouterKind) -> &mut Self {
        self.router = router;
        self
    }

    /// Tune the model-driven routers and the per-site telemetry feeding
    /// them (SLO budget, percentile, EWMA constants — see
    /// [`RouterConfig`]).
    pub fn set_router_config(&mut self, cfg: RouterConfig) -> &mut Self {
        self.router_cfg = cfg;
        self
    }

    /// Enable delayed telemetry propagation between sites and the
    /// router (the scenario `topology.telemetry` block): sites publish
    /// snapshots on a jittered report interval and routing decisions
    /// read the last snapshot that *arrived* over the site's network
    /// latency. The default (zero interval) keeps oracle-fresh routing,
    /// byte-for-byte identical to the pre-telemetry engine.
    pub fn set_telemetry(&mut self, telemetry: TelemetryConfig) -> &mut Self {
        self.telemetry = telemetry;
        self
    }

    /// Install the control plane's utilization reconciler: every
    /// telemetry snapshot that arrives at the router is fed to a
    /// [`lass_simcore::UtilizationReconciler`] targeting this busy
    /// fraction, and the resulting desired-fleet directive travels back
    /// to the site (one latency each way) where the site policy
    /// reconciles its container fleet toward it. Requires telemetry to
    /// be enabled (snapshots are the reconciler's only input).
    pub fn set_reconciler_target(&mut self, target: Option<f64>) -> &mut Self {
        self.reconciler_target = target;
        self
    }

    /// Arm request hedging (the scenario `topology.hedge` block): the
    /// router dispatches up to `max_clones` extra copies of each
    /// request per the configured trigger, the first response wins, and
    /// cancels chase the losers at each site's network latency. `None`
    /// (the default) keeps the single-dispatch engine byte-identical.
    pub fn set_hedge(&mut self, hedge: Option<HedgeConfig>) -> &mut Self {
        self.hedge = hedge;
        self
    }

    /// Choose the per-site scheduler.
    pub fn set_policy(&mut self, policy: SitePolicyKind) -> &mut Self {
        self.policy = policy;
        self
    }

    /// Arm fault injection: timed and stochastic site crashes,
    /// partitions, and container bursts (see [`ChaosConfig`]). Faults
    /// target sites by topology index.
    pub fn set_chaos(&mut self, chaos: ChaosConfig) -> &mut Self {
        self.chaos = chaos;
        self
    }

    /// Run sites on a pool of `threads` worker threads using the
    /// conservative-synchronization parallel executor (see
    /// `lass_simcore::parallel`). Requires a multi-site topology where
    /// every site has a strictly positive router latency — degenerate
    /// topologies fall back to the sequential engine with a warning on
    /// stderr. The parallel report is deterministic for a given seed
    /// regardless of `threads`, but is not byte-identical to the
    /// sequential engine's (per-site RNG streams, barrier-stale router
    /// telemetry).
    pub fn set_parallel(&mut self, threads: Option<usize>) -> &mut Self {
        self.parallel = threads;
        self
    }

    /// Force multi-dimensional resource telemetry on or off. The
    /// default (unset) derives it: vector snapshots flow whenever any
    /// deployed function declares a non-compute workload class or the
    /// front-end router is the vector-aware `planner`. Off keeps sites
    /// reporting the legacy cpu-only shape byte-for-byte.
    pub fn set_multidim(&mut self, on: bool) -> &mut Self {
        self.multidim = Some(on);
        self
    }

    /// Deploy a function on every site; returns its id (assigned in
    /// registration order). `initial_containers` are provisioned
    /// per-site.
    pub fn add_function(&mut self, setup: FunctionSetup) -> FnId {
        let id = FnId(self.setups.len() as u32);
        self.setups.push(setup);
        id
    }

    /// Run to completion. `duration` defaults to the longest workload.
    pub fn run(self, duration_override: Option<f64>) -> Result<FederatedSimReport, String> {
        self.topology.validate()?;
        if self.setups.is_empty() {
            return Err("federated simulation has no functions".into());
        }
        self.chaos.validate()?;
        self.router_cfg.validate()?;
        self.telemetry.validate()?;
        if let Some(h) = &self.hedge {
            h.validate()?;
        }
        if let Some(rho) = self.reconciler_target {
            if !(rho.is_finite() && rho > 0.0 && rho < 1.0) {
                return Err(format!(
                    "reconciler target utilization must be in (0, 1), got {rho}"
                ));
            }
            if !self.telemetry.enabled() {
                return Err(
                    "the reconciler needs telemetry enabled (snapshots are its only input)".into(),
                );
            }
        }
        let site_count = self.topology.len();
        for (at, fault) in &self.chaos.events {
            if fault.site() as usize >= site_count {
                return Err(format!(
                    "chaos event at t={at}s targets site {} of a {site_count}-site topology",
                    fault.site()
                ));
            }
        }
        let duration = duration_override.unwrap_or_else(|| {
            self.setups
                .iter()
                .map(|s| s.workload.duration())
                .fold(0.0f64, f64::max)
        });
        if duration <= 0.0 {
            return Err("simulation needs a positive duration".into());
        }
        let entries: Vec<FunctionEntry> = self
            .setups
            .iter()
            .map(|s| FunctionEntry {
                name: s.spec.name.clone(),
                slo_deadline: s.slo_deadline,
                process: s.workload.build(),
            })
            .collect();
        let fed_functions: Vec<FedFunction> = self
            .setups
            .iter()
            .map(|s| {
                let d = s.spec.standard_demand();
                FedFunction {
                    name: s.spec.name.clone(),
                    slo_deadline: s.slo_deadline,
                    demand: [
                        f64::from(d.cpu.0),
                        f64::from(d.mem.0),
                        f64::from(d.bandwidth.0),
                    ],
                }
            })
            .collect();
        let metas: Vec<SiteMeta> = self
            .topology
            .sites()
            .iter()
            .map(|site| SiteMeta {
                name: site.name.clone(),
                latency: SimDuration::from_secs_f64(site.latency_secs),
                capacity_hint: site.cluster.total_cpu_capacity().as_cores(),
            })
            .collect();
        // Pristine per-site clusters: the build closure doubles as the
        // chaos layer's rebuild factory, so a crashed site recovers with
        // its original provisioning.
        let clusters: Vec<Cluster> = self
            .topology
            .into_sites()
            .into_iter()
            .map(|s| s.cluster)
            .collect();
        // Vector telemetry is opt-in by shape: any non-compute class or
        // the planner router flips sites to multi-dimensional
        // reporting; everything else keeps the legacy cpu-only shape.
        let multidim = self.multidim.unwrap_or_else(|| {
            self.router == RouterKind::Planner
                || self
                    .setups
                    .iter()
                    .any(|s| s.spec.class != lass_functions::WorkloadClass::Compute)
        });
        let router = self.router.build_with(&self.router_cfg);
        let router_cfg = self.router_cfg;
        let telemetry = self.telemetry;
        // Conservative parallelism needs lookahead: a multi-site
        // topology with strictly positive latencies. Anything else
        // degenerates (zero lookahead would force zero-width windows),
        // so fall back to the sequential engine rather than deadlock.
        let parallel = match self.parallel {
            Some(n) if n >= 1 => {
                if site_count < 2 {
                    eprintln!(
                        "warning: parallel_sites={n} ignored — single-site topology runs sequentially"
                    );
                    None
                } else if metas.iter().any(|m| m.latency.0 == 0) {
                    eprintln!(
                        "warning: parallel_sites={n} ignored — zero-latency site leaves no lookahead; running sequentially"
                    );
                    None
                } else {
                    Some(n)
                }
            }
            Some(0) => {
                return Err("parallel_sites must be >= 1 when set".into());
            }
            _ => None,
        };
        let (cfg, seed, setups, chaos) = (self.cfg, self.seed, self.setups, self.chaos);
        let reconciler_target = self.reconciler_target;
        let hedge = self.hedge;

        // The engine RNG prefix matches the corresponding single-cluster
        // simulation so the degenerate one-site topology replays it
        // exactly (same arrival and service streams).
        let report = match self.policy {
            SitePolicyKind::Lass => {
                let setups = setups.clone();
                let build = move |i: usize, restart: u32| {
                    // A degenerate one-site topology keeps the plain
                    // run's crash-stream label so parity holds even with
                    // failure injection on; multi-site topologies
                    // decorrelate per site, and every restart of a
                    // crashed site draws a fresh stream.
                    let base = if site_count == 1 {
                        String::new()
                    } else {
                        format!("site{i}:")
                    };
                    let label = if restart == 0 {
                        base
                    } else {
                        format!("{base}r{restart}:")
                    };
                    LassPolicy::new(cfg.clone(), clusters[i].clone(), seed, &setups, &label)
                };
                launch(
                    seed,
                    chaos,
                    router_cfg,
                    telemetry,
                    reconciler_target,
                    hedge,
                    multidim,
                    metas,
                    build,
                    router,
                    &fed_functions,
                    "",
                    duration,
                    entries,
                    parallel,
                )
            }
            SitePolicyKind::StaticRr => {
                let build = move |i: usize, _restart: u32| {
                    StaticRrPolicy::new(clusters[i].clone(), setups.clone())
                };
                launch(
                    seed,
                    chaos,
                    router_cfg,
                    telemetry,
                    reconciler_target,
                    hedge,
                    multidim,
                    metas,
                    build,
                    router,
                    &fed_functions,
                    "static-",
                    duration,
                    entries,
                    parallel,
                )
            }
            SitePolicyKind::Knative => {
                let build = move |i: usize, _restart: u32| {
                    KnativePolicy::new(cfg.clone(), clusters[i].clone(), setups.clone())
                };
                launch(
                    seed,
                    chaos,
                    router_cfg,
                    telemetry,
                    reconciler_target,
                    hedge,
                    multidim,
                    metas,
                    build,
                    router,
                    &fed_functions,
                    "knative-",
                    duration,
                    entries,
                    parallel,
                )
            }
        };
        Ok(report)
    }
}

/// Assemble the federation (initial policies from `build(i, 0)`, the
/// same closure installed as the crash-recovery rebuild factory), arm
/// the chaos wrapper, and pump the engine.
#[allow(clippy::too_many_arguments)]
fn launch<P, F>(
    seed: u64,
    chaos: ChaosConfig,
    router_cfg: RouterConfig,
    telemetry: TelemetryConfig,
    reconciler_target: Option<f64>,
    hedge: Option<HedgeConfig>,
    multidim: bool,
    metas: Vec<SiteMeta>,
    mut build: F,
    router: Box<dyn lass_simcore::RouterPolicy + Send>,
    fed_functions: &[FedFunction],
    prefix: &str,
    duration: f64,
    entries: Vec<FunctionEntry>,
    parallel: Option<usize>,
) -> FederatedSimReport
where
    P: ContainerChaos<Report = SimReport> + Send,
    P::Event: Send,
    F: FnMut(usize, u32) -> P + Send + 'static,
{
    let sites = metas
        .into_iter()
        .enumerate()
        .map(|(i, meta)| (meta, build(i, 0)))
        .collect();
    let mut fed = Federation::new(sites, router, fed_functions).with_rebuild(Box::new(build));
    fed.set_migration_penalty(SimDuration::from_secs_f64(chaos.migration_penalty_secs));
    fed.set_router_config(&router_cfg);
    // A disabled (zero-interval) runtime is inert: the federation keeps
    // routing on oracle-fresh state and emits no telemetry events.
    fed.set_telemetry(telemetry, seed);
    if let Some(rho) = reconciler_target {
        fed.set_reconciler(Box::new(lass_simcore::UtilizationReconciler::new(rho)));
    }
    if let Some(h) = hedge {
        fed.set_hedge(h);
    }
    fed.set_multidim(multidim);
    let cfg = EngineConfig {
        seed,
        rng_label_prefix: prefix.into(),
        duration_secs: duration,
        drain_secs: 120.0,
        stream_stats: false,
        parallel_sites: parallel,
    };
    match parallel {
        // The parallel executor barriers the fault schedule itself, so
        // the federation goes in bare rather than chaos-wrapped.
        Some(_) => run_federation_parallel(cfg, entries, fed, chaos, seed),
        None => run_simulation(cfg, entries, ChaosPolicy::new(fed, chaos, seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lass_cluster::{Cluster, CpuMilli, MemMib, PlacementPolicy};
    use lass_functions::{micro_benchmark, WorkloadSpec};

    fn edge_cloud() -> Topology {
        let mut t = Topology::new();
        t.add_site(
            "edge",
            Cluster::homogeneous(
                1,
                CpuMilli(4000),
                MemMib(16 * 1024),
                PlacementPolicy::BestFit,
            ),
            0.002,
        );
        t.add_site(
            "cloud",
            Cluster::homogeneous(
                6,
                CpuMilli(4000),
                MemMib(16 * 1024),
                PlacementPolicy::BestFit,
            ),
            0.040,
        );
        t
    }

    fn overload_sim(router: RouterKind) -> FederatedSimReport {
        let mut sim = FederatedSimulation::new(LassConfig::default(), edge_cloud(), 42);
        sim.set_router(router);
        let mut setup = FunctionSetup::new(
            micro_benchmark(0.1),
            0.1,
            WorkloadSpec::Static {
                rate: 60.0,
                duration: 120.0,
            },
        );
        setup.initial_containers = 1;
        sim.add_function(setup);
        sim.run(Some(120.0)).expect("runs")
    }

    #[test]
    fn latency_aware_offloads_overflow_to_the_cloud() {
        let rep = overload_sim(RouterKind::LatencyAware);
        assert_eq!(rep.per_site.len(), 2);
        let (edge, cloud) = (&rep.per_site[0], &rep.per_site[1]);
        assert!(edge.routed > 0, "edge starved");
        assert!(
            cloud.routed > 0,
            "60 req/s against a 4-core edge must spill: {:?}",
            (edge.routed, cloud.routed)
        );
        // Conservation: every arrival was routed somewhere.
        assert_eq!(edge.routed + cloud.routed, rep.aggregate_per_fn[0].arrivals);
    }

    /// Regression for the reconciler seam: with the site autoscaler
    /// off, only the control plane's utilization reconciler can grow an
    /// under-provisioned fleet — each directive round-trips through the
    /// telemetry layer (one latency each way) into
    /// [`LassPolicy`]'s `apply_desired_fleet`, which must actually
    /// create containers rather than hit the default no-op seam.
    #[test]
    fn reconciler_directives_scale_lass_sites_through_the_seam() {
        let run = |target: Option<f64>| {
            let mut cfg = LassConfig::default();
            cfg.autoscale = false;
            let mut sim = FederatedSimulation::new(cfg, edge_cloud(), 42);
            let mut telemetry = TelemetryConfig::default();
            telemetry.report_interval = SimDuration::from_secs_f64(1.0);
            sim.set_telemetry(telemetry);
            sim.set_reconciler_target(target);
            let mut setup = FunctionSetup::new(
                micro_benchmark(0.1),
                0.1,
                WorkloadSpec::Static {
                    rate: 30.0,
                    duration: 60.0,
                },
            );
            setup.initial_containers = 1;
            sim.add_function(setup);
            sim.run(Some(60.0)).expect("runs")
        };
        let base = run(None);
        let scaled = run(Some(0.2));
        // 30 req/s against one μ=10 container per site cannot keep up —
        // the frozen fleet only finishes its backlog during the drain
        // grace, with queueing delays in the tens of seconds. The
        // reconciled fleet must hold waits near the service time and
        // violate the SLO far less.
        let (b, s) = (&base.aggregate_per_fn[0], &scaled.aggregate_per_fn[0]);
        let (bw, sw) = (
            b.wait.mean().unwrap_or(0.0),
            s.wait.mean().unwrap_or(f64::INFINITY),
        );
        assert!(
            sw < bw * 0.5,
            "reconciler failed to grow the fleet: mean wait {bw} -> {sw}"
        );
        assert!(
            s.slo_violations < b.slo_violations / 2,
            "slo violations {} -> {}",
            b.slo_violations,
            s.slo_violations
        );
    }

    #[test]
    fn federated_run_is_deterministic() {
        let a = overload_sim(RouterKind::LeastLoaded);
        let b = overload_sim(RouterKind::LeastLoaded);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn static_and_knative_site_policies_run() {
        for kind in [SitePolicyKind::StaticRr, SitePolicyKind::Knative] {
            let mut sim = FederatedSimulation::new(LassConfig::default(), edge_cloud(), 7);
            sim.set_policy(kind).set_router(RouterKind::RoundRobin);
            let mut setup = FunctionSetup::new(
                micro_benchmark(0.1),
                0.1,
                WorkloadSpec::Static {
                    rate: 20.0,
                    duration: 60.0,
                },
            );
            setup.initial_containers = 2;
            sim.add_function(setup);
            let rep = sim.run(Some(60.0)).expect("runs");
            let completed: usize = rep
                .per_site
                .iter()
                .map(|s| s.report.per_fn[&0].completed)
                .sum();
            assert!(completed > 900, "{kind:?}: completed={completed}");
        }
    }

    #[test]
    fn parallel_execution_is_thread_count_invariant() {
        let run = |threads: usize| {
            let mut sim = FederatedSimulation::new(LassConfig::default(), edge_cloud(), 42);
            sim.set_router(RouterKind::LeastLoaded)
                .set_parallel(Some(threads));
            let mut setup = FunctionSetup::new(
                micro_benchmark(0.1),
                0.1,
                WorkloadSpec::Static {
                    rate: 40.0,
                    duration: 60.0,
                },
            );
            setup.initial_containers = 1;
            sim.add_function(setup);
            sim.run(Some(60.0)).expect("runs")
        };
        let (a, b) = (run(1), run(4));
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "parallel LaSS federation diverged across thread counts"
        );
        assert!(a.aggregate_per_fn[0].completed > 1000);
    }

    #[test]
    fn invalid_topology_is_rejected() {
        let sim = FederatedSimulation::new(LassConfig::default(), Topology::new(), 1);
        assert!(sim.run(Some(10.0)).is_err());
    }
}
