//! Pluggable arrival-rate prediction.
//!
//! §5 of the paper: "one can also plug in any load prediction method of
//! choice into LaSS with ease" — the prototype ships the Knative-inspired
//! dual-window estimator, and notes that time-series prediction may do
//! better. This module makes the predictor a first-class, configurable
//! component:
//!
//! * [`BurstAwarePredictor`] — the paper's scheme: dual sliding windows
//!   with a burst switch, smoothed by an EWMA across epochs (default).
//! * [`HoltPredictor`] — double exponential smoothing (level + trend),
//!   extrapolated one planning horizon ahead; anticipates ramps.
//! * [`PeakPredictor`] — provisions for the *maximum* tick rate seen in a
//!   recent window; conservative, trades capacity for tail latency.
//!
//! Enum dispatch keeps the controller `Clone`/serde-friendly; adding a
//! custom predictor means adding a variant (or wrapping the controller).

use lass_queueing::{DualWindowEstimator, Ewma};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Which predictor the controller instantiates per function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum PredictorKind {
    /// The paper's dual-window + EWMA scheme (default).
    #[default]
    BurstAware,
    /// Holt double exponential smoothing with the given level/trend gains,
    /// predicting `horizon_secs` ahead.
    Holt {
        /// Level smoothing gain α ∈ (0, 1].
        alpha: f64,
        /// Trend smoothing gain β ∈ (0, 1].
        beta: f64,
        /// Extrapolation horizon in seconds (≈ one epoch).
        horizon_secs: f64,
    },
    /// Maximum tick rate over the trailing window of this many seconds.
    Peak {
        /// Window length in seconds.
        window_secs: f64,
    },
}

/// A per-function rate predictor (enum-dispatched).
#[derive(Debug, Clone)]
pub enum Predictor {
    /// See [`BurstAwarePredictor`].
    BurstAware(BurstAwarePredictor),
    /// See [`HoltPredictor`].
    Holt(HoltPredictor),
    /// See [`PeakPredictor`].
    Peak(PeakPredictor),
}

impl Predictor {
    /// Instantiate from configuration (window parameters come from the
    /// controller config for the burst-aware scheme).
    pub fn new(
        kind: PredictorKind,
        long_window: f64,
        short_window: f64,
        burst_factor: f64,
        ewma_alpha: f64,
    ) -> Self {
        match kind {
            PredictorKind::BurstAware => Predictor::BurstAware(BurstAwarePredictor::new(
                long_window,
                short_window,
                burst_factor,
                ewma_alpha,
            )),
            PredictorKind::Holt {
                alpha,
                beta,
                horizon_secs,
            } => Predictor::Holt(HoltPredictor::new(alpha, beta, horizon_secs)),
            PredictorKind::Peak { window_secs } => Predictor::Peak(PeakPredictor::new(window_secs)),
        }
    }

    /// Feed the arrivals observed at a monitoring tick.
    pub fn record(&mut self, now: f64, arrivals: u64) {
        match self {
            Predictor::BurstAware(p) => p.record(now, arrivals),
            Predictor::Holt(p) => p.record(now, arrivals),
            Predictor::Peak(p) => p.record(now, arrivals),
        }
    }

    /// Predict the arrival rate the next epoch should be provisioned for.
    pub fn predict(&mut self, now: f64) -> f64 {
        match self {
            Predictor::BurstAware(p) => p.predict(now),
            Predictor::Holt(p) => p.predict(now),
            Predictor::Peak(p) => p.predict(now),
        }
    }
}

/// The paper's estimator: burst-aware dual windows, EWMA-smoothed across
/// epochs, with the raw short-window rate overriding during bursts.
#[derive(Debug, Clone)]
pub struct BurstAwarePredictor {
    window: DualWindowEstimator,
    ewma: Ewma,
}

impl BurstAwarePredictor {
    /// Build with the §5 parameters.
    pub fn new(long_window: f64, short_window: f64, burst_factor: f64, ewma_alpha: f64) -> Self {
        let mut window = DualWindowEstimator::new(long_window, short_window, burst_factor);
        window.set_origin(0.0);
        Self {
            window,
            ewma: Ewma::new(ewma_alpha),
        }
    }

    fn record(&mut self, now: f64, arrivals: u64) {
        self.window.record(now, arrivals);
    }

    fn predict(&mut self, now: f64) -> f64 {
        let raw = self.window.rate(now);
        let smoothed = self.ewma.observe(raw);
        if self.window.is_burst(now) {
            smoothed.max(raw)
        } else {
            smoothed
        }
    }
}

/// Holt double exponential smoothing over tick rates, extrapolating one
/// planning horizon ahead. Negative predictions clamp to zero.
#[derive(Debug, Clone)]
pub struct HoltPredictor {
    alpha: f64,
    beta: f64,
    horizon: f64,
    last_tick: Option<f64>,
    level: f64,
    trend: f64,
    seeded: bool,
}

impl HoltPredictor {
    /// Build with level gain `alpha`, trend gain `beta`, horizon seconds.
    pub fn new(alpha: f64, beta: f64, horizon: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        assert!(beta > 0.0 && beta <= 1.0);
        assert!(horizon >= 0.0);
        Self {
            alpha,
            beta,
            horizon,
            last_tick: None,
            level: 0.0,
            trend: 0.0,
            seeded: false,
        }
    }

    fn record(&mut self, now: f64, arrivals: u64) {
        let Some(last) = self.last_tick.replace(now) else {
            // First tick: assume it covers (0, now].
            if now > 0.0 {
                self.level = arrivals as f64 / now;
                self.seeded = true;
            }
            return;
        };
        let dt = (now - last).max(1e-9);
        let rate = arrivals as f64 / dt;
        if !self.seeded {
            self.level = rate;
            self.seeded = true;
            return;
        }
        let prev_level = self.level;
        self.level = self.alpha * rate + (1.0 - self.alpha) * (self.level + self.trend * dt);
        self.trend = self.beta * (self.level - prev_level) / dt + (1.0 - self.beta) * self.trend;
    }

    fn predict(&mut self, _now: f64) -> f64 {
        (self.level + self.trend * self.horizon).max(0.0)
    }
}

/// Provision for the peak tick rate over a trailing window.
#[derive(Debug, Clone)]
pub struct PeakPredictor {
    window: f64,
    ticks: VecDeque<(f64, f64)>,
    last_tick: Option<f64>,
}

impl PeakPredictor {
    /// Build with the trailing-window length in seconds.
    pub fn new(window: f64) -> Self {
        assert!(window > 0.0);
        Self {
            window,
            ticks: VecDeque::new(),
            last_tick: None,
        }
    }

    fn record(&mut self, now: f64, arrivals: u64) {
        let last = self.last_tick.replace(now).unwrap_or(0.0);
        let dt = (now - last).max(1e-9);
        self.ticks.push_back((now, arrivals as f64 / dt));
        let horizon = now - self.window;
        while self.ticks.front().is_some_and(|&(t, _)| t < horizon) {
            self.ticks.pop_front();
        }
    }

    fn predict(&mut self, _now: f64) -> f64 {
        self.ticks.iter().map(|&(_, r)| r).fold(0.0f64, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(p: &mut Predictor, rate: f64, from: f64, to: f64, tick: f64) {
        let mut t = from + tick;
        while t <= to + 1e-9 {
            p.record(t, (rate * tick).round() as u64);
            t += tick;
        }
    }

    fn mk(kind: PredictorKind) -> Predictor {
        Predictor::new(kind, 120.0, 10.0, 2.0, 0.7)
    }

    #[test]
    fn all_predictors_recover_a_steady_rate() {
        for kind in [
            PredictorKind::BurstAware,
            PredictorKind::Holt {
                alpha: 0.5,
                beta: 0.2,
                horizon_secs: 10.0,
            },
            PredictorKind::Peak { window_secs: 60.0 },
        ] {
            let mut p = mk(kind);
            feed(&mut p, 20.0, 0.0, 300.0, 5.0);
            let est = p.predict(300.0);
            assert!(
                (est - 20.0).abs() < 3.0,
                "{kind:?}: estimate {est} for steady 20/s"
            );
        }
    }

    #[test]
    fn holt_anticipates_a_ramp() {
        let mut holt = mk(PredictorKind::Holt {
            alpha: 0.6,
            beta: 0.3,
            horizon_secs: 10.0,
        });
        let mut burst = mk(PredictorKind::BurstAware);
        // Ramp 10 -> 40 req/s over 150 s.
        let tick = 5.0;
        let mut t: f64 = tick;
        while t <= 150.0 {
            let rate: f64 = 10.0 + 30.0 * t / 150.0;
            let n = (rate * tick).round() as u64;
            holt.record(t, n);
            burst.record(t, n);
            t += tick;
        }
        let h = holt.predict(150.0);
        let b = burst.predict(150.0);
        // Truth at 150 s is 40; with a 10 s horizon Holt should be at or
        // above 40, while the windowed average lags behind.
        assert!(h >= 38.0, "holt={h}");
        assert!(b < h, "burst-aware {b} should lag holt {h} on a ramp");
    }

    #[test]
    fn peak_is_conservative_after_a_spike() {
        let mut peak = mk(PredictorKind::Peak { window_secs: 60.0 });
        feed(&mut peak, 10.0, 0.0, 100.0, 5.0);
        // One 5-second spike at 60/s.
        peak.record(105.0, 300);
        feed(&mut peak, 10.0, 105.0, 140.0, 5.0);
        let est = peak.predict(140.0);
        assert!((est - 60.0).abs() < 1e-9, "peak holds the spike: {est}");
        // After the window passes, the spike ages out.
        feed(&mut peak, 10.0, 140.0, 200.0, 5.0);
        let est = peak.predict(200.0);
        assert!(est < 15.0, "spike aged out: {est}");
    }

    #[test]
    fn holt_clamps_negative_extrapolation() {
        let mut holt = mk(PredictorKind::Holt {
            alpha: 0.8,
            beta: 0.8,
            horizon_secs: 60.0,
        });
        // Steep decline 50 -> 0.
        let tick = 5.0;
        let mut t: f64 = tick;
        while t <= 100.0 {
            let rate: f64 = (50.0 - 0.5 * t).max(0.0);
            holt.record(t, (rate * tick).round() as u64);
            t += tick;
        }
        assert!(holt.predict(100.0) >= 0.0);
    }

    #[test]
    fn default_kind_is_the_papers() {
        assert_eq!(PredictorKind::default(), PredictorKind::BurstAware);
    }
}
