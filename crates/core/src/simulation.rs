//! End-to-end simulation: workloads → load balancer → containers, with the
//! LaSS controller in the loop.
//!
//! This is the simulated equivalent of the paper's testbed runs: requests
//! arrive from per-function workload generators, the load balancer hands
//! them to containers (§5), containers serve FCFS with service times drawn
//! from the function's (deflation-dependent) model, and the controller
//! re-plans allocations every epoch from its sliding-window monitors.
//!
//! The event pump, request lifecycle, and latency statistics live in the
//! shared engine (`lass_simcore::engine`); this module contributes
//! [`LassPolicy`], the [`SchedulerPolicy`] implementation that drives a
//! [`Cluster`] under the [`LassController`]. Everything is deterministic
//! given the seed.

use crate::commands::Plan;
use crate::config::{DispatchPolicy, LassConfig};
use crate::controller::LassController;
use crate::registry::FunctionRegistry;
use lass_cluster::{Cluster, ContainerId, ContainerState, FnId, RequestId, UserId};
use lass_functions::{FunctionSpec, WorkloadSpec};
use lass_simcore::{
    run_simulation, EngineConfig, EngineOutcome, FunctionEntry, PolicyCtx, ReqId, SampleStats,
    SchedulerPolicy, SimTime, TimeSeries, TimeWeightedGauge,
};
use serde::Serialize;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// One function's deployment in a simulation run.
#[derive(Debug, Clone)]
pub struct FunctionSetup {
    /// Runtime characteristics.
    pub spec: FunctionSpec,
    /// SLO deadline (seconds) on the waiting time (§6.1 default 0.1).
    pub slo_deadline: f64,
    /// Weight within the owning user.
    pub weight: f64,
    /// Owning user.
    pub user: UserId,
    /// User's weight (set once per user; later setups may repeat it).
    pub user_weight: f64,
    /// The workload driving this function.
    pub workload: WorkloadSpec,
    /// Containers provisioned at t=0.
    pub initial_containers: u32,
    /// Whether initial containers start warm (ready at t=0).
    pub warm_start: bool,
}

impl FunctionSetup {
    /// A setup with the common defaults: weight 1 under user 0, warm start,
    /// no pre-provisioned containers.
    pub fn new(spec: FunctionSpec, slo_deadline: f64, workload: WorkloadSpec) -> Self {
        Self {
            spec,
            slo_deadline,
            weight: 1.0,
            user: UserId(0),
            user_weight: 1.0,
            workload,
            initial_containers: 0,
            warm_start: true,
        }
    }
}

/// Policy events for the LaSS simulation (arrivals are engine-level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Ev {
    Ready(ContainerId),
    Complete {
        cid: ContainerId,
        seq: u64,
    },
    /// Failure injection: the container crashes (if still alive).
    Crash(ContainerId),
    Monitor,
    Epoch,
}

/// Per-function results.
#[derive(Debug, Serialize)]
pub struct FnReport {
    /// Function name.
    pub name: String,
    /// Total arrivals.
    pub arrivals: usize,
    /// Completed requests.
    pub completed: usize,
    /// Requests re-dispatched because their container was terminated or
    /// crashed.
    pub reruns: usize,
    /// Waiting times (arrival → service start), seconds.
    pub wait: SampleStats,
    /// Response times (arrival → completion), seconds.
    pub response: SampleStats,
    /// Service times (start → completion), seconds.
    pub service: SampleStats,
    /// Requests whose waiting time exceeded the SLO deadline.
    pub slo_violations: usize,
    /// Requests abandoned after exceeding the platform's hard time limit.
    pub timeouts: usize,
    /// Allocated CPU (milli) over time, sampled each epoch.
    pub cpu_timeline: TimeSeries,
    /// Container count over time, sampled each epoch.
    pub container_timeline: TimeSeries,
    /// Observed arrival rate (req/s) per monitor tick.
    pub rate_timeline: TimeSeries,
}

impl FnReport {
    /// Fraction of requests whose wait met the SLO deadline (abandoned
    /// requests count as violations).
    pub fn slo_attainment(&self) -> f64 {
        let finished = self.completed + self.timeouts;
        if finished == 0 {
            return 1.0;
        }
        1.0 - self.slo_violations as f64 / finished as f64
    }
}

/// Whole-run results.
#[derive(Debug, Serialize)]
pub struct SimReport {
    /// Per-function reports, keyed by function id index.
    pub per_fn: BTreeMap<u32, FnReport>,
    /// Time-weighted average of allocated CPU / capacity (the paper's
    /// "system utilization" in §6.6/§6.7).
    pub allocated_utilization: f64,
    /// CPU-seconds actually consumed by request service divided by
    /// capacity × duration (busy utilization).
    pub busy_utilization: f64,
    /// Simulated duration in seconds (excluding drain).
    pub duration: f64,
    /// Epochs planned under overload.
    pub overloaded_epochs: usize,
    /// Total epochs planned.
    pub epochs: usize,
    /// Creates that failed even after lazy reclamation.
    pub failed_creates: u32,
    /// Injected container crashes (0 unless `container_mtbf_secs` is set).
    pub crashes: usize,
    /// Cluster-wide unallocated-capacity timeline (fraction), per epoch.
    pub free_timeline: TimeSeries,
}

/// The simulation harness.
pub struct Simulation {
    cfg: LassConfig,
    seed: u64,
    cluster: Cluster,
    setups: Vec<FunctionSetup>,
}

impl Simulation {
    /// Create a simulation over a cluster.
    pub fn new(cfg: LassConfig, cluster: Cluster, seed: u64) -> Self {
        cfg.validate().expect("invalid LassConfig");
        Self {
            cfg,
            seed,
            cluster,
            setups: Vec::new(),
        }
    }

    /// Deploy a function; returns its id (assigned in registration order).
    pub fn add_function(&mut self, setup: FunctionSetup) -> FnId {
        let id = FnId(self.setups.len() as u32);
        self.setups.push(setup);
        id
    }

    fn resolved_duration(&self, duration_override: Option<f64>) -> f64 {
        duration_override.unwrap_or_else(|| {
            self.setups
                .iter()
                .map(|s| s.workload.duration())
                .fold(0.0f64, f64::max)
        })
    }

    /// Run to completion. `duration` defaults to the longest workload; a
    /// drain grace period lets in-flight requests finish afterwards.
    pub fn run(self, duration_override: Option<f64>) -> SimReport {
        self.run_with(duration_override, |_, _| {})
    }

    /// Run with access to the controller right before the loop starts —
    /// used by validation harnesses to tweak controller knobs (e.g.
    /// disabling re-inflation for Fig. 4).
    pub fn run_with(
        self,
        duration_override: Option<f64>,
        tweak: impl FnOnce(&mut LassController, &mut Cluster),
    ) -> SimReport {
        let duration = self.resolved_duration(duration_override);
        assert!(duration > 0.0, "simulation needs a positive duration");
        let entries: Vec<FunctionEntry> = self
            .setups
            .iter()
            .map(|s| FunctionEntry {
                name: s.spec.name.clone(),
                slo_deadline: s.slo_deadline,
                process: s.workload.build(),
            })
            .collect();
        let engine_cfg = EngineConfig {
            seed: self.seed,
            rng_label_prefix: String::new(),
            duration_secs: duration,
            drain_secs: 120.0,
            stream_stats: false,
            parallel_sites: None,
        };
        let mut policy = LassPolicy::new(self.cfg, self.cluster, self.seed, &self.setups, "");
        tweak(&mut policy.controller, &mut policy.cluster);
        run_simulation(engine_cfg, entries, policy)
    }
}

struct FnRuntime {
    wrr: crate::loadbalancer::SmoothWrr,
    pending: VecDeque<RequestId>,
    cpu_timeline: TimeSeries,
    container_timeline: TimeSeries,
    rate_timeline: TimeSeries,
}

/// The LaSS scheduling policy: §5 dispatch over a [`Cluster`], with the
/// controller re-planning every epoch. Crate-visible so the federated
/// harness can instantiate one policy per topology site.
pub(crate) struct LassPolicy {
    cfg: LassConfig,
    cluster: Cluster,
    controller: LassController,
    /// Per-function runtime state, indexed densely by `FnId` (ids are
    /// assigned sequentially at registration).
    fns: Vec<FnRuntime>,
    /// Per-container current service: (request, seq, start).
    in_service: HashMap<ContainerId, (RequestId, u64, SimTime)>,
    next_seq: u64,
    crash_rng: lass_simcore::SimRng,
    crashes: usize,
    util_gauge: TimeWeightedGauge,
    busy_cpu_seconds: f64,
    overloaded_epochs: usize,
    epochs: usize,
    failed_creates: u32,
    free_timeline: TimeSeries,
    /// Chaos brown-out: a multiplicative service-speed factor (1.0 =
    /// nominal; 0.5 = every service draw takes twice as long). Set by
    /// [`lass_simcore::Fault::SiteSlowdown`] through the federation.
    service_scale: f64,
}

impl LassPolicy {
    /// Build the policy. `rng_site_label` prefixes the crash stream's
    /// RNG label (`""` for plain single-cluster runs — the historical
    /// label — and `"site<i>:"` under a federated topology so sites
    /// draw decorrelated failure times).
    pub(crate) fn new(
        cfg: LassConfig,
        cluster: Cluster,
        seed: u64,
        setups: &[FunctionSetup],
        rng_site_label: &str,
    ) -> Self {
        let mut registry = FunctionRegistry::new();
        let mut fns = Vec::with_capacity(setups.len());
        for (i, s) in setups.iter().enumerate() {
            registry.set_user_weight(s.user, s.user_weight);
            let fn_id = registry.register(s.spec.clone(), s.slo_deadline, s.weight, s.user);
            debug_assert_eq!(fn_id, FnId(i as u32));
            fns.push(FnRuntime {
                wrr: crate::loadbalancer::SmoothWrr::new(),
                pending: VecDeque::new(),
                cpu_timeline: TimeSeries::new(),
                container_timeline: TimeSeries::new(),
                rate_timeline: TimeSeries::new(),
            });
        }
        let mut cluster = cluster;
        // Pre-provision initial containers.
        for (i, s) in setups.iter().enumerate() {
            let fn_id = FnId(i as u32);
            for _ in 0..s.initial_containers {
                let ready = if s.warm_start {
                    SimTime::ZERO
                } else {
                    SimTime::ZERO + s.spec.cold_start
                };
                if let Ok(cid) = cluster.create_container_vec(
                    fn_id,
                    s.spec.standard_cpu,
                    s.spec.standard_demand(),
                    SimTime::ZERO,
                    ready,
                ) {
                    if s.warm_start {
                        cluster.mark_container_ready(cid);
                    }
                }
            }
        }
        let controller = LassController::new(cfg.clone(), registry);
        Self {
            cfg,
            cluster,
            controller,
            fns,
            in_service: HashMap::new(),
            next_seq: 0,
            crash_rng: lass_simcore::SimRng::from_seed_label(
                seed,
                &format!("{rng_site_label}crashes"),
            ),
            crashes: 0,
            util_gauge: TimeWeightedGauge::new(SimTime::ZERO, 0.0),
            busy_cpu_seconds: 0.0,
            overloaded_epochs: 0,
            epochs: 0,
            failed_creates: 0,
            free_timeline: TimeSeries::new(),
            service_scale: 1.0,
        }
    }

    /// Failure injection: arm an exponential crash timer for a container.
    fn arm_crash(&mut self, ctx: &mut impl PolicyCtx<Ev>, cid: ContainerId, now: SimTime) {
        if let Some(mtbf) = self.cfg.container_mtbf_secs {
            let dt = self.crash_rng.exp(1.0 / mtbf);
            ctx.schedule(
                now + lass_simcore::SimDuration::from_secs_f64(dt),
                Ev::Crash(cid),
            );
        }
    }

    fn on_crash(&mut self, ctx: &mut impl PolicyCtx<Ev>, cid: ContainerId, now: SimTime) {
        let Ok(term) = self.cluster.terminate_container(cid, now) else {
            return; // already gone (stale timer)
        };
        self.crashes += 1;
        self.in_service.remove(&cid);
        let f = term.container.fn_id();
        for rid in term.orphans {
            if ctx.rerun(ReqId(rid.0)).is_some() {
                self.dispatch(ctx, rid, f, now);
            }
        }
    }

    /// Hand a request to a container per the dispatch policy, or park it in
    /// the function's pending queue when no container exists yet.
    fn dispatch(&mut self, ctx: &mut impl PolicyCtx<Ev>, rid: RequestId, f: FnId, now: SimTime) {
        let chosen = match self.cfg.dispatch {
            DispatchPolicy::SharedQueue => {
                // Park centrally; the fastest idle container pulls first
                // (the opposite of the worst-case slowest-first analysis,
                // as §3.2 notes a real scheduler would do). One pass over
                // the cluster's per-function index, no snapshot.
                self.cluster.fastest_idle_container(f)
            }
            policy @ (DispatchPolicy::IdleFirstWrr | DispatchPolicy::Wrr) => {
                // The cluster maintains the candidate weights (and idle
                // flags) incrementally on create/terminate/resize and
                // the service transitions, so dispatch feeds the index
                // straight into the picker — no per-request snapshot,
                // no container-map walk.
                let rt = self.fns.get_mut(f.0 as usize).expect("known fn");
                let cands = self.cluster.wrr_candidates(f);
                if policy == DispatchPolicy::IdleFirstWrr && cands.iter().any(|s| s.idle) {
                    rt.wrr
                        .pick_from(cands.iter().filter(|s| s.idle).map(|s| (s.cid, s.weight)))
                } else {
                    rt.wrr.pick_from(cands.iter().map(|s| (s.cid, s.weight)))
                }
            }
        };
        match chosen {
            Some(cid) => {
                self.cluster
                    .container_mut(cid)
                    .expect("live container")
                    .enqueue(rid);
                self.try_start(ctx, cid, now);
            }
            None => {
                self.fns
                    .get_mut(f.0 as usize)
                    .expect("known fn")
                    .pending
                    .push_back(rid);
            }
        }
    }

    /// Begin service on `cid` if it is idle with queued work. Requests
    /// whose queueing time already exceeds the platform's hard limit are
    /// abandoned at dequeue (§2.1's execution time limit).
    fn try_start(&mut self, ctx: &mut impl PolicyCtx<Ev>, cid: ContainerId, now: SimTime) {
        let timeout = self.cfg.request_timeout_secs;
        let (fn_id, deflation, rid) = loop {
            let Some(c) = self.cluster.container(cid) else {
                return;
            };
            let fn_id = c.fn_id();
            let deflation = c.deflation_ratio();
            let Some(rid) = self.cluster.begin_service(cid, now) else {
                return;
            };
            let expired = timeout.is_some_and(|limit| {
                ctx.request_info(ReqId(rid.0))
                    .is_some_and(|(_, arrival)| now.saturating_since(arrival).as_secs_f64() > limit)
            });
            if !expired {
                break (fn_id, deflation, rid);
            }
            // Abandon: undo the service start and drop the request.
            let dropped = self.cluster.finish_service(cid, now).expect("still live");
            debug_assert_eq!(dropped, rid);
            ctx.abandon(ReqId(rid.0));
        };
        let spec_model = self
            .controller
            .registry()
            .get(fn_id)
            .expect("registered")
            .spec
            .service;
        let dur = spec_model.sample(deflation, ctx.service_rng(fn_id.0)) / self.service_scale;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.in_service.insert(cid, (rid, seq, now));
        ctx.schedule(
            now + lass_simcore::SimDuration::from_secs_f64(dur),
            Ev::Complete { cid, seq },
        );
    }

    fn on_ready(&mut self, ctx: &mut impl PolicyCtx<Ev>, cid: ContainerId, now: SimTime) {
        if !self.cluster.mark_container_ready(cid) {
            return; // terminated while starting, or a stale event
        }
        let f = self.cluster.container(cid).expect("just marked").fn_id();
        self.feed_container(ctx, cid, f, now);
    }

    /// Give an idle container work: first its own queue, then the
    /// function's pending backlog.
    fn feed_container(
        &mut self,
        ctx: &mut impl PolicyCtx<Ev>,
        cid: ContainerId,
        f: FnId,
        now: SimTime,
    ) {
        self.try_start(ctx, cid, now);
        loop {
            let Some(c) = self.cluster.container(cid) else {
                return;
            };
            if c.state() != ContainerState::Idle {
                return;
            }
            let Some(rid) = self
                .fns
                .get_mut(f.0 as usize)
                .expect("known fn")
                .pending
                .pop_front()
            else {
                return;
            };
            self.cluster
                .container_mut(cid)
                .expect("live container")
                .enqueue(rid);
            self.try_start(ctx, cid, now);
        }
    }

    fn on_complete(
        &mut self,
        ctx: &mut impl PolicyCtx<Ev>,
        cid: ContainerId,
        seq: u64,
        now: SimTime,
    ) {
        // Validate against stale events (container terminated / rerun).
        match self.in_service.get(&cid) {
            Some(&(_, s, _)) if s == seq => {}
            _ => return,
        }
        let (rid, _, started) = self.in_service.remove(&cid).expect("checked");
        let Some(c) = self.cluster.container(cid) else {
            return;
        };
        let deflation = c.deflation_ratio();
        let f = c.fn_id();
        let cpu_cores = c.cpu().as_cores();
        let done = self
            .cluster
            .finish_service(cid, now)
            .expect("live container");
        debug_assert_eq!(done, rid);

        // `None` means the completion was withheld upstream (a federated
        // site whose response is stalled behind a network partition): the
        // container is free either way, only the measurement is deferred.
        if let Some(completion) = ctx.complete(ReqId(rid.0), started, now) {
            self.busy_cpu_seconds += completion.service * cpu_cores;
            self.controller
                .record_service(f, deflation, completion.service);
        }

        self.feed_container(ctx, cid, f, now);
    }

    fn on_monitor(&mut self, ctx: &mut impl PolicyCtx<Ev>, now: SimTime) {
        let now_secs = now.as_secs_f64();
        let window = ctx.take_window_counts();
        let mut counts = BTreeMap::new();
        for (i, rt) in self.fns.iter_mut().enumerate() {
            let n = window[i];
            counts.insert(FnId(i as u32), n);
            rt.rate_timeline
                .push(now, n as f64 / self.cfg.monitor_interval_secs);
        }
        self.controller.on_monitor_tick(now_secs, &counts);
    }

    fn on_epoch(&mut self, ctx: &mut impl PolicyCtx<Ev>, now: SimTime) {
        let now_secs = now.as_secs_f64();
        let plan: Plan = self.controller.plan_epoch(&self.cluster, now_secs);
        self.epochs += 1;
        if plan.overloaded {
            self.overloaded_epochs += 1;
        }
        let outcome = self.controller.apply(&mut self.cluster, &plan, now);
        self.failed_creates += outcome.failed_creates;
        // Invalidate in-service bookkeeping for terminated containers.
        for cid in &outcome.terminated {
            self.in_service.remove(cid);
        }
        for (cid, ready) in &outcome.created {
            ctx.schedule(*ready, Ev::Ready(*cid));
            self.arm_crash(ctx, *cid, now);
        }
        // Re-dispatch orphans (the paper's "requests that need to be
        // rerun").
        for rid in outcome.orphans {
            if let Some(fn_idx) = ctx.rerun(ReqId(rid.0)) {
                self.dispatch(ctx, rid, FnId(fn_idx), now);
            }
        }
        // Resizes may have slowed/sped containers; in-flight services keep
        // their sampled durations (documented simplification).

        // Timelines.
        self.util_gauge.set(now, self.cluster.cpu_utilization());
        self.free_timeline
            .push(now, 1.0 - self.cluster.cpu_utilization());
        for (i, rt) in self.fns.iter_mut().enumerate() {
            // Lazily-marked containers are logically released (they are
            // cached for reuse, §3.3), so the reported allocation excludes
            // them — matching the downscaling visible in the paper's
            // timelines.
            let (mut cpu, mut count) = (0u32, 0u32);
            for c in self.cluster.fn_containers(FnId(i as u32)) {
                if !c.is_marked_for_termination() {
                    cpu += c.cpu().0;
                    count += 1;
                }
            }
            rt.cpu_timeline.push(now, f64::from(cpu));
            rt.container_timeline.push(now, f64::from(count));
        }
        #[cfg(debug_assertions)]
        self.cluster.check_invariants();
    }
}

impl lass_simcore::ContainerChaos for LassPolicy {
    /// Chaos burst: crash up to `count` uniformly-drawn live containers
    /// (drawn from the site's crash stream, so bursts stay deterministic
    /// per seed). Orphaned requests are re-dispatched exactly like an
    /// MTBF crash's.
    fn crash_containers(&mut self, ctx: &mut impl PolicyCtx<Ev>, count: u32, now: SimTime) -> u32 {
        let mut victims = self.cluster.container_ids();
        let before = self.crashes;
        for _ in 0..count {
            if victims.is_empty() {
                break;
            }
            let pick = self.crash_rng.below(victims.len());
            let cid = victims.swap_remove(pick);
            self.on_crash(ctx, cid, now);
        }
        (self.crashes - before) as u32
    }

    /// Warm-container census for the affinity router: the function's
    /// booted fleet (cold-starting containers excluded).
    fn warm_containers(&self, fn_idx: u32) -> u64 {
        self.cluster.fn_warm_count(FnId(fn_idx))
    }

    /// Brown-out absorption: scale every subsequent service draw by
    /// `1/factor`. Factor 1.0 restores nominal speed exactly (the
    /// division by 1.0 is an IEEE identity, so recovered runs replay
    /// byte-for-byte).
    fn set_service_factor(&mut self, factor: f64) {
        self.service_scale = if factor.is_finite() && factor > 0.0 {
            factor.min(1.0)
        } else {
            1.0
        };
    }

    /// Per-dimension capacity/allocation census for vector telemetry
    /// and the planner router.
    fn resource_snapshot(&self) -> lass_simcore::ResourceSnapshot {
        let cap = self.cluster.total_capacity_vec();
        let used = self.cluster.total_used_vec();
        lass_simcore::ResourceSnapshot {
            cap: [
                f64::from(cap.cpu.0),
                f64::from(cap.mem.0),
                f64::from(cap.bandwidth.0),
            ],
            used: [
                f64::from(used.cpu.0),
                f64::from(used.mem.0),
                f64::from(used.bandwidth.0),
            ],
        }
    }

    /// Reconcile the site toward a fleet of `desired` containers — the
    /// receiving end of the utilization reconciler's directive. The
    /// directive was computed from a snapshot published one hop ago, so
    /// the epoch planner may already have moved the fleet; reconcile
    /// against the cluster as it stands now and report whether anything
    /// changed.
    ///
    /// Scale-up containers go to the functions with the deepest parked
    /// backlog per container (ties break toward the smaller fleet, then
    /// the lower function id), boot at the standard size through the
    /// usual cold start, and join the MTBF crash process like any
    /// epoch-planned create. Scale-down prefers containers the planner
    /// already marked for termination, then idle ones, never takes a
    /// function's last container, and re-dispatches orphaned requests.
    fn apply_desired_fleet(
        &mut self,
        ctx: &mut impl PolicyCtx<Ev>,
        desired: u32,
        now: SimTime,
    ) -> bool {
        let current = self.cluster.container_count() as u32;
        let mut changed = false;
        if desired > current {
            for _ in 0..desired - current {
                let mut best: Option<(usize, usize, usize)> = None;
                for f in 0..self.fns.len() {
                    let pending = self.fns[f].pending.len();
                    let count = self.cluster.fn_container_count(FnId(f as u32));
                    let better = match best {
                        None => true,
                        Some((_, bp, bc)) => pending > bp || (pending == bp && count < bc),
                    };
                    if better {
                        best = Some((f, pending, count));
                    }
                }
                let Some((f, _, _)) = best else { break };
                let fn_id = FnId(f as u32);
                let (cpu, demand, cold) = {
                    let rec = self
                        .controller
                        .registry()
                        .get(fn_id)
                        .expect("registered fn");
                    (
                        rec.spec.standard_cpu,
                        rec.spec.standard_demand(),
                        rec.spec.cold_start,
                    )
                };
                match self
                    .cluster
                    .create_container_vec(fn_id, cpu, demand, now, now + cold)
                {
                    Ok(cid) => {
                        ctx.schedule(now + cold, Ev::Ready(cid));
                        self.arm_crash(ctx, cid, now);
                        changed = true;
                    }
                    Err(_) => {
                        self.failed_creates += 1;
                        break; // cluster full: further creates would fail too
                    }
                }
            }
        } else if desired < current {
            // Rank victims: already-marked first, then idle, then the
            // lightest-loaded; container id breaks ties so the order is
            // deterministic whatever the map iteration order.
            let mut victims: Vec<(bool, bool, usize, ContainerId, FnId)> = self
                .cluster
                .all_containers()
                .map(|c| {
                    (
                        !c.is_marked_for_termination(),
                        !c.is_idle(),
                        c.load(),
                        c.id(),
                        c.fn_id(),
                    )
                })
                .collect();
            victims.sort_unstable();
            let mut excess = current - desired;
            for (_, _, _, cid, f) in victims {
                if excess == 0 {
                    break;
                }
                if self.cluster.fn_container_count(f) <= 1 {
                    continue; // never strand a function's parked backlog
                }
                let Ok(term) = self.cluster.terminate_container(cid, now) else {
                    continue;
                };
                self.in_service.remove(&cid);
                for rid in term.orphans {
                    if ctx.rerun(ReqId(rid.0)).is_some() {
                        self.dispatch(ctx, rid, f, now);
                    }
                }
                excess -= 1;
                changed = true;
            }
        }
        changed
    }
}

impl SchedulerPolicy for LassPolicy {
    type Event = Ev;
    type Report = SimReport;

    fn on_start(&mut self, ctx: &mut impl PolicyCtx<Ev>) {
        self.util_gauge
            .set(SimTime::ZERO, self.cluster.cpu_utilization());
        let initial: Vec<ContainerId> = self.cluster.all_containers().map(|c| c.id()).collect();
        for cid in initial {
            self.arm_crash(ctx, cid, SimTime::ZERO);
        }
        ctx.schedule(
            SimTime::from_secs_f64(self.cfg.monitor_interval_secs),
            Ev::Monitor,
        );
        // Epochs run 1 ms after the monitor tick they share an instant
        // with, so the planner always sees fully up-to-date windows.
        ctx.schedule(
            SimTime::from_secs_f64(self.cfg.epoch_secs) + lass_simcore::SimDuration::from_millis(1),
            Ev::Epoch,
        );
    }

    fn on_arrival(&mut self, ctx: &mut impl PolicyCtx<Ev>, rid: ReqId, fn_idx: u32, now: SimTime) {
        self.dispatch(ctx, RequestId(rid.0), FnId(fn_idx), now);
    }

    fn on_event(&mut self, ctx: &mut impl PolicyCtx<Ev>, ev: Ev, now: SimTime) {
        match ev {
            Ev::Ready(cid) => self.on_ready(ctx, cid, now),
            Ev::Complete { cid, seq } => self.on_complete(ctx, cid, seq, now),
            Ev::Crash(cid) => self.on_crash(ctx, cid, now),
            Ev::Monitor => {
                self.on_monitor(ctx, now);
                if now < ctx.end_time() {
                    ctx.schedule(
                        now + lass_simcore::SimDuration::from_secs_f64(
                            self.cfg.monitor_interval_secs,
                        ),
                        Ev::Monitor,
                    );
                }
            }
            Ev::Epoch => {
                self.on_epoch(ctx, now);
                if now < ctx.end_time() {
                    ctx.schedule(
                        now + lass_simcore::SimDuration::from_secs_f64(self.cfg.epoch_secs),
                        Ev::Epoch,
                    );
                }
            }
        }
    }

    fn finish(mut self, outcome: EngineOutcome) -> SimReport {
        let duration = outcome.duration_secs;
        let end = SimTime::from_secs_f64(duration);
        let capacity_cores = self.cluster.total_cpu_capacity().as_cores();
        let per_fn = outcome
            .per_fn
            .into_iter()
            .enumerate()
            .map(|(i, stats)| {
                let f = FnId(i as u32);
                let rt = self.fns.get_mut(i).expect("known fn");
                let name = self
                    .controller
                    .registry()
                    .get(f)
                    .map_or_else(|| f.to_string(), |r| r.spec.name.clone());
                (
                    f.0,
                    FnReport {
                        name,
                        arrivals: stats.arrivals,
                        completed: stats.completed,
                        reruns: stats.reruns,
                        wait: stats.wait,
                        response: stats.response,
                        service: stats.service,
                        slo_violations: stats.slo_violations,
                        timeouts: stats.timeouts,
                        cpu_timeline: std::mem::take(&mut rt.cpu_timeline),
                        container_timeline: std::mem::take(&mut rt.container_timeline),
                        rate_timeline: std::mem::take(&mut rt.rate_timeline),
                    },
                )
            })
            .collect();
        SimReport {
            per_fn,
            allocated_utilization: self.util_gauge.average_until(end),
            busy_utilization: if capacity_cores > 0.0 && duration > 0.0 {
                self.busy_cpu_seconds / (capacity_cores * duration)
            } else {
                0.0
            },
            duration,
            overloaded_epochs: self.overloaded_epochs,
            epochs: self.epochs,
            failed_creates: self.failed_creates,
            crashes: self.crashes,
            free_timeline: std::mem::take(&mut self.free_timeline),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lass_functions::micro_benchmark;

    fn quick_sim(rate: f64, duration: f64, autoscale: bool, initial: u32) -> SimReport {
        let mut cfg = LassConfig::default();
        cfg.autoscale = autoscale;
        let mut sim = Simulation::new(cfg, Cluster::paper_testbed(), 42);
        let mut setup = FunctionSetup::new(
            micro_benchmark(0.1),
            0.1,
            WorkloadSpec::Static { rate, duration },
        );
        setup.initial_containers = initial;
        sim.add_function(setup);
        sim.run(Some(duration))
    }

    #[test]
    fn static_load_with_adequate_fixed_allocation_meets_slo() {
        // 10 req/s at mu=10 with 4 warm containers, no autoscaling.
        let report = quick_sim(10.0, 120.0, false, 4);
        let f = &report.per_fn[&0];
        assert!(f.arrivals > 1000, "arrivals={}", f.arrivals);
        assert!(
            f.completed as f64 > f.arrivals as f64 * 0.99,
            "completed={} arrivals={}",
            f.completed,
            f.arrivals
        );
        assert!(
            f.slo_attainment() > 0.90,
            "attainment={}",
            f.slo_attainment()
        );
    }

    #[test]
    fn under_provisioned_fixed_allocation_violates_slo() {
        // 30 req/s at mu=10 with only 3 containers: rho=1, queue explodes.
        let report = quick_sim(30.0, 60.0, false, 3);
        let f = &report.per_fn[&0];
        assert!(
            f.slo_attainment() < 0.9,
            "attainment={} should be poor",
            f.slo_attainment()
        );
    }

    #[test]
    fn autoscaler_provisions_from_cold() {
        let report = quick_sim(20.0, 180.0, true, 0);
        let f = &report.per_fn[&0];
        assert!(f.completed > 2000);
        // After warm-up the allocation settles near the model's answer.
        let late = f
            .container_timeline
            .points()
            .iter()
            .filter(|(t, _)| *t > 60.0)
            .map(|(_, v)| *v)
            .collect::<Vec<_>>();
        assert!(!late.is_empty());
        let avg: f64 = late.iter().sum::<f64>() / late.len() as f64;
        assert!((3.0..=8.0).contains(&avg), "containers avg={avg}");
        // And the tail of the run meets the SLO.
        assert!(report.failed_creates == 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = quick_sim(15.0, 60.0, true, 1);
        let b = quick_sim(15.0, 60.0, true, 1);
        assert_eq!(a.per_fn[&0].arrivals, b.per_fn[&0].arrivals);
        assert_eq!(a.per_fn[&0].completed, b.per_fn[&0].completed);
        assert_eq!(a.per_fn[&0].wait.samples(), b.per_fn[&0].wait.samples());
    }

    #[test]
    fn utilization_bounded() {
        let report = quick_sim(10.0, 60.0, true, 0);
        assert!(report.allocated_utilization >= 0.0 && report.allocated_utilization <= 1.0);
        assert!(report.busy_utilization >= 0.0 && report.busy_utilization <= 1.0);
    }

    #[test]
    fn shared_queue_policy_runs() {
        let mut cfg = LassConfig::default();
        cfg.dispatch = DispatchPolicy::SharedQueue;
        let mut sim = Simulation::new(cfg, Cluster::paper_testbed(), 7);
        let mut setup = FunctionSetup::new(
            micro_benchmark(0.1),
            0.1,
            WorkloadSpec::Static {
                rate: 10.0,
                duration: 60.0,
            },
        );
        setup.initial_containers = 3;
        sim.add_function(setup);
        let report = sim.run(Some(60.0));
        let f = &report.per_fn[&0];
        assert!(f.completed > 400);
    }

    #[test]
    fn two_functions_share_cluster() {
        let mut sim = Simulation::new(LassConfig::default(), Cluster::paper_testbed(), 11);
        sim.add_function(FunctionSetup::new(
            micro_benchmark(0.1),
            0.1,
            WorkloadSpec::Static {
                rate: 10.0,
                duration: 120.0,
            },
        ));
        sim.add_function(FunctionSetup::new(
            lass_functions::binary_alert(),
            0.1,
            WorkloadSpec::Static {
                rate: 20.0,
                duration: 120.0,
            },
        ));
        let report = sim.run(Some(120.0));
        assert!(report.per_fn[&0].completed > 800);
        assert!(report.per_fn[&1].completed > 1800);
    }

    /// Minimal context for driving the reconciler seam directly.
    struct StubCtx {
        scheduled: Vec<(SimTime, Ev)>,
        rng: lass_simcore::SimRng,
    }

    impl PolicyCtx<Ev> for StubCtx {
        fn schedule(&mut self, at: SimTime, ev: Ev) {
            self.scheduled.push((at, ev));
        }
        fn end_time(&self) -> SimTime {
            SimTime::from_secs_f64(1e9)
        }
        fn fn_count(&self) -> usize {
            1
        }
        fn service_rng(&mut self, _fn_idx: u32) -> &mut lass_simcore::SimRng {
            &mut self.rng
        }
        fn request_info(&self, _rid: ReqId) -> Option<(u32, SimTime)> {
            None
        }
        fn complete(
            &mut self,
            _rid: ReqId,
            _started: SimTime,
            _now: SimTime,
        ) -> Option<lass_simcore::Completion> {
            None
        }
        fn abandon(&mut self, _rid: ReqId) -> Option<u32> {
            None
        }
        fn lose(&mut self, _rid: ReqId) -> Option<u32> {
            None
        }
        fn rerun(&mut self, _rid: ReqId) -> Option<u32> {
            None
        }
        fn take_window_counts(&mut self) -> Vec<u64> {
            vec![0]
        }
        fn outstanding(&self) -> usize {
            0
        }
    }

    /// The reconciler seam is real for [`LassPolicy`]: a desired-fleet
    /// directive grows the fleet (cold-starting each create through
    /// `Ev::Ready`) and shrinks it, never below one container per
    /// function, and reports convergence honestly.
    #[test]
    fn desired_fleet_directive_scales_the_cluster() {
        use lass_simcore::ContainerChaos;
        let mut setup = FunctionSetup::new(
            micro_benchmark(0.1),
            0.1,
            WorkloadSpec::Static {
                rate: 1.0,
                duration: 10.0,
            },
        );
        setup.initial_containers = 2;
        let mut policy = LassPolicy::new(
            LassConfig::default(),
            Cluster::paper_testbed(),
            7,
            &[setup],
            "",
        );
        let mut ctx = StubCtx {
            scheduled: Vec::new(),
            rng: lass_simcore::SimRng::from_seed_label(7, "stub"),
        };
        let now = SimTime::from_secs_f64(1.0);
        // Scale up 2 → 5: three creates, each paying its cold start.
        assert!(policy.apply_desired_fleet(&mut ctx, 5, now));
        assert_eq!(policy.cluster.container_count(), 5);
        let readies = ctx
            .scheduled
            .iter()
            .filter(|(_, e)| matches!(e, Ev::Ready(_)))
            .count();
        assert_eq!(readies, 3, "each create boots through Ev::Ready");
        assert!(
            ctx.scheduled.iter().all(|(at, _)| *at > now),
            "new containers must not be ready instantly"
        );
        // Scale to zero keeps the function's last container.
        assert!(policy.apply_desired_fleet(&mut ctx, 0, now));
        assert_eq!(policy.cluster.container_count(), 1);
        // Converged: reapplying the directive changes nothing.
        assert!(!policy.apply_desired_fleet(&mut ctx, 1, now));
    }
}
