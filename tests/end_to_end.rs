//! Cross-crate integration tests: queueing model ↔ simulator ↔ controller
//! ↔ baseline, exercised through the public facade (`lass::*`).

use lass::cluster::{Cluster, UserId};
use lass::core::{DispatchPolicy, FunctionSetup, LassConfig, ReclamationPolicy, Simulation};
use lass::functions::{binary_alert, micro_benchmark, mobilenet_v2, squeezenet, WorkloadSpec};
use lass::openwhisk::{OwConfig, OwFunctionSetup, OwSimulation};
use lass::queueing::{required_containers_exact, SolverConfig};

/// The headline model-validation loop (Fig. 3 in miniature): Algorithm 1's
/// allocation holds the P95 waiting-time SLO in a full simulation.
#[test]
fn model_allocation_meets_slo_end_to_end() {
    for &(mu, lambda, slo) in &[(10.0, 20.0, 0.1), (5.0, 30.0, 0.2), (10.0, 50.0, 0.1)] {
        let c = required_containers_exact(
            lambda,
            mu,
            slo,
            &SolverConfig {
                target_percentile: 0.99,
                max_containers: 10_000,
            },
        )
        .expect("feasible")
        .containers;
        let mut cfg = LassConfig::default();
        cfg.autoscale = false;
        let mut sim = Simulation::new(cfg, Cluster::paper_testbed(), 42);
        let mut setup = FunctionSetup::new(
            micro_benchmark(1.0 / mu),
            slo,
            WorkloadSpec::Static {
                rate: lambda,
                duration: 300.0,
            },
        );
        setup.initial_containers = c;
        sim.add_function(setup);
        let mut report = sim.run(Some(300.0));
        let f = report.per_fn.get_mut(&0).expect("one function");
        let p95 = f.wait.percentile(0.95).expect("has samples");
        assert!(
            p95 <= slo * 1.15,
            "mu={mu} lambda={lambda}: p95 {p95:.4}s vs SLO {slo}s"
        );
    }
}

/// The autoscaler provisions from zero and converges near the model's
/// static answer.
#[test]
fn autoscaler_converges_to_model_allocation() {
    let lambda = 30.0;
    let mu = 10.0;
    let model_c = required_containers_exact(lambda, mu, 0.1, &SolverConfig::default())
        .expect("feasible")
        .containers as f64;
    let mut sim = Simulation::new(LassConfig::default(), Cluster::paper_testbed(), 1);
    sim.add_function(FunctionSetup::new(
        micro_benchmark(1.0 / mu),
        0.1,
        WorkloadSpec::Static {
            rate: lambda,
            duration: 400.0,
        },
    ));
    let report = sim.run(Some(400.0));
    let f = &report.per_fn[&0];
    let late: Vec<f64> = f
        .container_timeline
        .points()
        .iter()
        .filter(|(t, _)| *t > 200.0)
        .map(|(_, v)| *v)
        .collect();
    let avg = late.iter().sum::<f64>() / late.len() as f64;
    assert!(
        (avg - model_c).abs() <= 1.5,
        "steady-state {avg:.1} containers vs model {model_c}"
    );
}

/// Overload: both reclamation policies respect the weighted guarantee, and
/// deflation never retains less capacity for a capped function.
#[test]
fn reclamation_policies_respect_fair_share() {
    let run = |policy: ReclamationPolicy| {
        let mut cfg = LassConfig::default();
        cfg.reclamation = policy;
        let mut sim = Simulation::new(cfg, Cluster::paper_testbed(), 5);
        let mut a = FunctionSetup::new(
            binary_alert(),
            0.1,
            WorkloadSpec::Static {
                rate: 300.0,
                duration: 300.0,
            },
        );
        a.user = UserId(0);
        sim.add_function(a);
        let mut b = FunctionSetup::new(
            mobilenet_v2(),
            0.1,
            WorkloadSpec::Static {
                rate: 10.0,
                duration: 300.0,
            },
        );
        b.user = UserId(1);
        sim.add_function(b);
        let report = sim.run(Some(300.0));
        assert!(report.overloaded_epochs > 10, "scenario must overload");
        (
            report.per_fn[&0]
                .cpu_timeline
                .mean_between(150.0, 300.0)
                .unwrap(),
            report.per_fn[&1]
                .cpu_timeline
                .mean_between(150.0, 300.0)
                .unwrap(),
        )
    };
    let (term_a, term_b) = run(ReclamationPolicy::Termination);
    let (defl_a, defl_b) = run(ReclamationPolicy::Deflation);
    // Equal weights => each guaranteed 6000 milli (minus one container of
    // granularity slack).
    for (label, a, b) in [("term", term_a, term_b), ("defl", defl_a, defl_b)] {
        assert!(a >= 5000.0, "{label}: BA got {a}");
        assert!(b >= 4000.0, "{label}: MN got {b}");
        assert!(a + b <= 12_100.0, "{label}: over capacity");
    }
    // Deflation retains at least as much for each function.
    assert!(
        defl_a + 1.0 >= term_a * 0.95,
        "defl_a={defl_a} term_a={term_a}"
    );
    assert!(
        defl_b + 1.0 >= term_b * 0.95,
        "defl_b={defl_b} term_b={term_b}"
    );
}

/// The same CPU-heavy burst that cascades vanilla OpenWhisk leaves LaSS
/// fully operational (§6.6).
#[test]
fn lass_survives_what_kills_openwhisk() {
    let ba_wl = WorkloadSpec::Static {
        rate: 40.0,
        duration: 400.0,
    };
    let mn_wl = WorkloadSpec::Steps {
        steps: vec![(0.0, 0.0), (60.0, 20.0)],
        duration: 400.0,
    };

    let mut ow = OwSimulation::new(OwConfig {
        seed: 3,
        ..OwConfig::default()
    });
    ow.add_function(OwFunctionSetup {
        spec: binary_alert(),
        workload: ba_wl.clone(),
        slo_deadline: 0.1,
    });
    ow.add_function(OwFunctionSetup {
        spec: mobilenet_v2(),
        workload: mn_wl.clone(),
        slo_deadline: 0.1,
    });
    let ow_report = ow.run(Some(400.0));
    assert!(
        !ow_report.failures.is_empty(),
        "OpenWhisk must suffer invoker failures"
    );

    let mut lass = Simulation::new(LassConfig::default(), Cluster::paper_testbed(), 3);
    let mut ba = FunctionSetup::new(binary_alert(), 0.1, ba_wl);
    ba.user = UserId(0);
    ba.initial_containers = 2;
    lass.add_function(ba);
    let mut mn = FunctionSetup::new(mobilenet_v2(), 0.1, mn_wl);
    mn.user = UserId(1);
    lass.add_function(mn);
    let report = lass.run(Some(400.0));
    // LaSS keeps serving both functions to the end.
    let ba_done = report.per_fn[&0].completed as f64 / report.per_fn[&0].arrivals as f64;
    assert!(ba_done > 0.95, "BA completion ratio {ba_done}");
    assert!(report.per_fn[&1].completed > 1000, "MobileNet still served");
}

/// Identical seeds give bitwise-identical results across the whole stack.
#[test]
fn full_stack_determinism() {
    let run = || {
        let mut sim = Simulation::new(LassConfig::default(), Cluster::paper_testbed(), 99);
        sim.add_function(FunctionSetup::new(
            squeezenet(),
            0.1,
            WorkloadSpec::Ramp {
                from: 5.0,
                to: 40.0,
                duration: 200.0,
            },
        ));
        sim.run(Some(200.0))
    };
    let (a, b) = (run(), run());
    assert_eq!(a.per_fn[&0].arrivals, b.per_fn[&0].arrivals);
    assert_eq!(a.per_fn[&0].completed, b.per_fn[&0].completed);
    assert_eq!(a.per_fn[&0].wait.samples(), b.per_fn[&0].wait.samples());
    assert_eq!(
        a.per_fn[&0].container_timeline.points(),
        b.per_fn[&0].container_timeline.points()
    );
}

/// Dispatch disciplines order as theory predicts at the same allocation.
#[test]
fn dispatch_disciplines_order_correctly() {
    let run = |policy: DispatchPolicy| {
        let mut cfg = LassConfig::default();
        cfg.autoscale = false;
        cfg.dispatch = policy;
        let mut sim = Simulation::new(cfg, Cluster::paper_testbed(), 17);
        let mut setup = FunctionSetup::new(
            micro_benchmark(0.1),
            0.1,
            WorkloadSpec::Static {
                rate: 40.0,
                duration: 300.0,
            },
        );
        setup.initial_containers = 6;
        sim.add_function(setup);
        let mut report = sim.run(Some(300.0));
        report
            .per_fn
            .get_mut(&0)
            .unwrap()
            .wait
            .percentile(0.95)
            .unwrap()
    };
    let shared = run(DispatchPolicy::SharedQueue);
    let idle_first = run(DispatchPolicy::IdleFirstWrr);
    let wrr = run(DispatchPolicy::Wrr);
    assert!(
        shared <= idle_first * 1.2,
        "shared={shared} idle={idle_first}"
    );
    assert!(idle_first < wrr, "idle={idle_first} wrr={wrr}");
}

/// Hard request timeouts bound queueing when a function is starved.
#[test]
fn starved_function_requests_time_out() {
    let mut cfg = LassConfig::default();
    cfg.request_timeout_secs = Some(30.0);
    cfg.autoscale = false;
    let mut sim = Simulation::new(cfg, Cluster::paper_testbed(), 23);
    let mut setup = FunctionSetup::new(
        micro_benchmark(0.1),
        0.1,
        WorkloadSpec::Static {
            rate: 30.0, // 3 containers can serve 30/s at best: rho = 1
            duration: 240.0,
        },
    );
    setup.initial_containers = 2; // guaranteed overload
    sim.add_function(setup);
    let mut report = sim.run(Some(240.0));
    let f = report.per_fn.get_mut(&0).expect("one function");
    assert!(f.timeouts > 0, "expected abandoned requests");
    let p_max = f.wait.max().unwrap_or(0.0);
    assert!(
        p_max <= 31.0,
        "served waits must respect the 30s hard limit, got {p_max}"
    );
}

/// Failure injection: frequent container crashes degrade but never wedge
/// the system — orphans are re-dispatched and the controller replaces the
/// lost capacity within an epoch.
#[test]
fn survives_container_crash_injection() {
    let mut cfg = LassConfig::default();
    cfg.container_mtbf_secs = Some(30.0); // brutal: each container dies ~every 30s
    let mut sim = Simulation::new(cfg, Cluster::paper_testbed(), 41);
    sim.add_function(FunctionSetup::new(
        micro_benchmark(0.1),
        0.1,
        WorkloadSpec::Static {
            rate: 20.0,
            duration: 300.0,
        },
    ));
    let report = sim.run(Some(300.0));
    let f = &report.per_fn[&0];
    assert!(
        report.crashes > 10,
        "crash injection active: {}",
        report.crashes
    );
    assert!(f.reruns > 0, "orphans were re-dispatched");
    let done = f.completed as f64 / f.arrivals as f64;
    assert!(done > 0.97, "completion ratio {done} despite crashes");
    // Tail latency suffers but the controller keeps the function served.
    assert!(
        f.slo_attainment() > 0.7,
        "attainment {} under crash storm",
        f.slo_attainment()
    );
}

/// Without failure injection the crash counter stays at zero.
#[test]
fn no_crashes_unless_injected() {
    let mut sim = Simulation::new(LassConfig::default(), Cluster::paper_testbed(), 42);
    sim.add_function(FunctionSetup::new(
        micro_benchmark(0.1),
        0.1,
        WorkloadSpec::Static {
            rate: 10.0,
            duration: 60.0,
        },
    ));
    let report = sim.run(Some(60.0));
    assert_eq!(report.crashes, 0);
}
