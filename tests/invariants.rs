//! Property-based integration tests: system-level invariants that must
//! hold for arbitrary workloads and configurations.

use lass::cluster::{Cluster, UserId};
use lass::core::{FunctionSetup, LassConfig, ReclamationPolicy, Simulation};
use lass::functions::{micro_benchmark, WorkloadSpec};
use proptest::prelude::*;

fn policy_strategy() -> impl Strategy<Value = ReclamationPolicy> {
    prop_oneof![
        Just(ReclamationPolicy::Termination),
        Just(ReclamationPolicy::Deflation),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No matter the load or policy: capacity accounting never drifts, no
    /// request is double-completed, and utilization stays in [0, 1].
    #[test]
    fn conservation_laws_hold(
        seed in 0u64..500,
        rate1 in 1.0f64..120.0,
        rate2 in 1.0f64..40.0,
        policy in policy_strategy(),
    ) {
        let mut cfg = LassConfig::default();
        cfg.reclamation = policy;
        let mut sim = Simulation::new(cfg, Cluster::paper_testbed(), seed);
        let mut a = FunctionSetup::new(
            micro_benchmark(0.05),
            0.1,
            WorkloadSpec::Static { rate: rate1, duration: 120.0 },
        );
        a.user = UserId(0);
        sim.add_function(a);
        let mut b = FunctionSetup::new(
            micro_benchmark(0.2),
            0.1,
            WorkloadSpec::Steps {
                steps: vec![(0.0, 0.0), (40.0, rate2)],
                duration: 120.0,
            },
        );
        b.user = UserId(1);
        sim.add_function(b);
        let report = sim.run(Some(120.0));

        for (id, f) in &report.per_fn {
            prop_assert!(
                f.completed + f.timeouts <= f.arrivals,
                "fn {id}: {} done + {} expired > {} arrivals",
                f.completed, f.timeouts, f.arrivals
            );
            prop_assert!(f.slo_attainment() >= 0.0 && f.slo_attainment() <= 1.0);
            for &(_, v) in f.cpu_timeline.points() {
                prop_assert!((0.0..=12_000.0).contains(&v));
            }
        }
        prop_assert!((0.0..=1.0).contains(&report.allocated_utilization));
        prop_assert!((0.0..=1.0).contains(&report.busy_utilization));
        // Deterministic epoch count: duration / epoch length.
        prop_assert_eq!(report.epochs, 12);
    }

    /// Under any overload mix, the sum of adjusted allocations never
    /// exceeds capacity and the weighted guarantee holds for both policies.
    #[test]
    fn overload_never_overcommits(
        seed in 0u64..200,
        heavy in 150.0f64..400.0,
        policy in policy_strategy(),
    ) {
        let mut cfg = LassConfig::default();
        cfg.reclamation = policy;
        let mut sim = Simulation::new(cfg, Cluster::paper_testbed(), seed);
        let mut a = FunctionSetup::new(
            micro_benchmark(0.05),
            0.05,
            WorkloadSpec::Static { rate: heavy, duration: 180.0 },
        );
        a.user = UserId(0);
        sim.add_function(a);
        let mut b = FunctionSetup::new(
            micro_benchmark(0.1),
            0.05,
            WorkloadSpec::Static { rate: heavy / 2.0, duration: 180.0 },
        );
        b.user = UserId(1);
        sim.add_function(b);
        let report = sim.run(Some(180.0));
        // Total allocation never exceeds cluster capacity at any epoch.
        let pts_a = report.per_fn[&0].cpu_timeline.points();
        let pts_b = report.per_fn[&1].cpu_timeline.points();
        for (&(t, va), &(_, vb)) in pts_a.iter().zip(pts_b) {
            prop_assert!(
                va + vb <= 12_000.0 + 1e-6,
                "t={t}: {va} + {vb} exceeds capacity"
            );
        }
    }
}
