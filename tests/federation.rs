//! Federated-topology integration tests.
//!
//! Three families:
//!
//! * **Degenerate-topology parity** — a single-site, zero-latency
//!   topology must reproduce the corresponding plain single-cluster
//!   simulation *byte-for-byte* (same RNG streams, same event order,
//!   same statistics). Together with `golden_parity.rs`, which pins the
//!   plain runs against pre-refactor outputs, this pins the federated
//!   code path to the goldens transitively.
//! * **Router invariants** (property tests) — every arrival is routed
//!   to a live site, and arrivals are conserved across sites.
//! * **Fixed-seed federated end-to-end** — a two-site latency-aware
//!   edge↔cloud run is deterministic, offloads under overload, and
//!   reports consistent per-site and aggregate statistics.

use lass::cluster::{Cluster, CpuMilli, MemMib, PlacementPolicy, Topology};
use lass::core::{
    FederatedSimReport, FederatedSimulation, FunctionSetup, LassConfig, SimReport, Simulation,
    SitePolicyKind, StaticRrSimulation,
};
use lass::functions::{micro_benchmark, WorkloadSpec};
use lass::scenario::{Scenario, ScenarioReport};
use lass::simcore::{RouterKind, SimTime, SiteState, WaitForecast};
use proptest::prelude::*;

fn testbed_setup(rate: f64, duration: f64, initial: u32) -> FunctionSetup {
    let mut setup = FunctionSetup::new(
        micro_benchmark(0.1),
        0.1,
        WorkloadSpec::Static { rate, duration },
    );
    setup.initial_containers = initial;
    setup
}

/// A single-site zero-latency LaSS federation reproduces the plain
/// simulation byte-for-byte.
#[test]
fn degenerate_topology_matches_plain_lass_run() {
    let plain: SimReport = {
        let mut sim = Simulation::new(LassConfig::default(), Cluster::paper_testbed(), 42);
        sim.add_function(testbed_setup(20.0, 120.0, 1));
        sim.run(Some(120.0))
    };
    let fed: FederatedSimReport = {
        let mut sim = FederatedSimulation::new(
            LassConfig::default(),
            Topology::single(Cluster::paper_testbed()),
            42,
        );
        sim.add_function(testbed_setup(20.0, 120.0, 1));
        sim.run(Some(120.0)).expect("runs")
    };
    assert_eq!(fed.per_site.len(), 1);
    assert_eq!(fed.per_site[0].routed, plain.per_fn[&0].arrivals);
    // The site's inner report is the plain report, bit for bit.
    assert_eq!(
        serde_json::to_string(&fed.per_site[0].report).unwrap(),
        serde_json::to_string(&plain).unwrap()
    );
    // And the engine's aggregate repeats the same numbers.
    let agg = &fed.aggregate_per_fn[0];
    assert_eq!(agg.arrivals, plain.per_fn[&0].arrivals);
    assert_eq!(agg.completed, plain.per_fn[&0].completed);
    assert_eq!(agg.wait.samples(), plain.per_fn[&0].wait.samples());
}

/// Degenerate parity holds even with failure injection on: the single
/// site draws from the plain run's crash RNG stream.
#[test]
fn degenerate_topology_matches_plain_run_with_crashes() {
    let mut cfg = LassConfig::default();
    cfg.container_mtbf_secs = Some(120.0);
    let plain: SimReport = {
        let mut sim = Simulation::new(cfg.clone(), Cluster::paper_testbed(), 21);
        sim.add_function(testbed_setup(20.0, 120.0, 2));
        sim.run(Some(120.0))
    };
    assert!(plain.crashes > 0, "scenario must actually crash containers");
    let fed = {
        let mut sim = FederatedSimulation::new(cfg, Topology::single(Cluster::paper_testbed()), 21);
        sim.add_function(testbed_setup(20.0, 120.0, 2));
        sim.run(Some(120.0)).expect("runs")
    };
    assert_eq!(
        serde_json::to_string(&fed.per_site[0].report).unwrap(),
        serde_json::to_string(&plain).unwrap()
    );
}

/// Same degenerate parity for the static round-robin site policy.
#[test]
fn degenerate_topology_matches_plain_static_rr_run() {
    let plain: SimReport = {
        let mut sim = StaticRrSimulation::new(Cluster::paper_testbed(), 5);
        sim.add_function(testbed_setup(12.0, 60.0, 3));
        sim.run(Some(60.0))
    };
    let fed = {
        let mut sim = FederatedSimulation::new(
            LassConfig::default(),
            Topology::single(Cluster::paper_testbed()),
            5,
        );
        sim.set_policy(SitePolicyKind::StaticRr);
        sim.add_function(testbed_setup(12.0, 60.0, 3));
        sim.run(Some(60.0)).expect("runs")
    };
    assert_eq!(
        serde_json::to_string(&fed.per_site[0].report).unwrap(),
        serde_json::to_string(&plain).unwrap()
    );
}

fn small_cluster(nodes: u32) -> Cluster {
    Cluster::homogeneous(
        nodes,
        CpuMilli(4000),
        MemMib(16 * 1024),
        PlacementPolicy::BestFit,
    )
}

/// Build a router-view site for the property tests. Telemetry starts
/// empty (zero forecast, healthy, no warm census) unless the test sets
/// it explicitly.
fn prop_site(latency: f64, cap: f64, in_flight: u64) -> SiteState {
    SiteState {
        name: String::new(),
        latency: lass::simcore::SimDuration::from_secs_f64(latency),
        capacity_hint: cap,
        in_flight,
        up: true,
        forecast: WaitForecast::default().into(),
        flakiness: 0.0,
        warm: 0,
        resources: lass::simcore::ResourceSnapshot::default(),
        fits: f64::INFINITY,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Routers only ever pick live sites, whatever the load picture.
    #[test]
    fn routers_pick_live_sites(
        latencies in prop::collection::vec(0.0f64..0.2, 1..6),
        loads in prop::collection::vec(0u64..500, 1..6),
        caps in prop::collection::vec(1.0f64..64.0, 1..6),
        arrivals in 1u64..200,
    ) {
        let n = latencies.len().min(loads.len()).min(caps.len());
        prop_assume!(n >= 1);
        let mut sites: Vec<SiteState> = (0..n)
            .map(|i| {
                let mut s = prop_site(latencies[i], caps[i], loads[i]);
                s.name = format!("s{i}");
                s
            })
            .collect();
        for kind in RouterKind::ALL {
            let mut router = kind.build();
            for k in 0..arrivals {
                let idx = router.route((k % 3) as u32, SimTime::from_secs(k), &sites);
                prop_assert!(idx < n, "{}: site {idx} of {n}", kind.as_str());
                // Feed the decision back so stateful routers see load move.
                sites[idx].in_flight += 1;
            }
        }
    }

    /// Under arbitrary telemetry (forecasts, flakiness, warm censuses)
    /// and arbitrary up/down patterns with at least one live site, no
    /// router ever picks a down site — the chaos contract extended to
    /// the model-driven routers, whose extra signals might otherwise
    /// make a dark site look attractive.
    #[test]
    fn routers_never_pick_down_sites_under_random_telemetry(
        spec in prop::collection::vec(
            // ((latency, cap, in_flight, up), (lambda, mu, servers, flaky, warm))
            ((0.0f64..0.2, 1.0f64..32.0, 0u64..200, 0u8..2),
             (0.0f64..50.0, 0.1f64..20.0, 1u32..16, 0.0f64..1.0, 0u64..8)),
            2..6,
        ),
        arrivals in 1u64..150,
    ) {
        let mut sites: Vec<SiteState> = spec
            .iter()
            .map(|&((lat, cap, load, up), (lambda, mu, servers, flaky, warm))| {
                let mut s = prop_site(lat, cap, load);
                s.up = up == 1;
                s.forecast = WaitForecast { lambda, mu, servers }.into();
                s.flakiness = flaky;
                s.warm = warm;
                s
            })
            .collect();
        prop_assume!(sites.iter().any(|s| s.up));
        for kind in RouterKind::ALL {
            let mut router = kind.build();
            for k in 0..arrivals {
                let idx = router.route((k % 2) as u32, SimTime::from_secs(k), &sites);
                prop_assert!(idx < sites.len(), "{} out of range", kind.as_str());
                prop_assert!(sites[idx].up, "{} picked a down site", kind.as_str());
                sites[idx].in_flight += 1;
            }
        }
    }

    /// Overload/NaN scoring pin: with arbitrarily degenerate telemetry —
    /// non-finite λ̂/μ̂, unstable models, NaN flakiness — every router
    /// still returns an in-range up site, and whenever any up site has a
    /// finite predicted score the score-ranked routers (slo-aware,
    /// affinity) never elect a saturated/NaN-scored site over it.
    #[test]
    fn degenerate_telemetry_never_elects_a_saturated_site(
        spec in prop::collection::vec(
            ((0.0f64..0.2, 1.0f64..32.0, 0u64..200, 0u8..2),
             (0u8..6, 0.0f64..400.0, 0u8..6, 0.01f64..20.0, 1u32..40),
             (0u8..5, 0u64..8)),
            2..6,
        ),
        arrivals in 1u64..100,
    ) {
        fn weird(sel: u8, finite: f64) -> f64 {
            match sel {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => 1e308,
                3 => 5e-324,
                _ => finite,
            }
        }
        let mut sites: Vec<SiteState> = spec
            .iter()
            .map(
                |&((lat, cap, load, up), (lsel, lambda, msel, mu, servers), (fsel, warm))| {
                    let mut s = prop_site(lat, cap, load);
                    s.up = up == 1;
                    s.forecast = WaitForecast {
                        lambda: weird(lsel, lambda),
                        mu: weird(msel, mu),
                        servers,
                    }
                    .into();
                    s.flakiness = weird(fsel, 0.3);
                    s.warm = warm;
                    s
                },
            )
            .collect();
        prop_assume!(sites.iter().any(|s| s.up));
        let percentile = 0.95; // RouterConfig::default().percentile
        let finite_score = |s: &SiteState| {
            (s.latency.as_secs_f64() + s.forecast.wait_percentile(percentile)).is_finite()
        };
        for kind in RouterKind::ALL {
            let mut router = kind.build();
            let score_ranked =
                matches!(kind, RouterKind::SloAware | RouterKind::Affinity);
            for k in 0..arrivals {
                let idx = router.route((k % 2) as u32, SimTime::from_secs(k), &sites);
                prop_assert!(idx < sites.len(), "{} out of range", kind.as_str());
                prop_assert!(sites[idx].up, "{} picked a down site", kind.as_str());
                if score_ranked && sites.iter().any(|s| s.up && finite_score(s)) {
                    prop_assert!(
                        finite_score(&sites[idx]),
                        "{} elected a saturated site over a finite-scored one",
                        kind.as_str()
                    );
                }
                sites[idx].in_flight += 1;
            }
        }
    }

    /// Routing decisions are a pure function of the observed state
    /// sequence: two instances of the same router fed the same
    /// `SiteState` sequence pick identical sites (deterministic
    /// tie-breaks, no hidden randomness) — and every arrival lands on
    /// exactly one site, so routed counts are conserved.
    #[test]
    fn routers_are_deterministic_and_conserve_arrivals(
        spec in prop::collection::vec(
            (0.0f64..0.1, 1.0f64..16.0, 0u8..2, 0.0f64..40.0, 0.0f64..0.6),
            2..5,
        ),
        arrivals in 1u64..120,
    ) {
        prop_assume!(spec.iter().any(|&(_, _, up, _, _)| up == 1));
        let build_sites = || -> Vec<SiteState> {
            spec.iter()
                .map(|&(lat, cap, up, lambda, flaky)| {
                    let mut s = prop_site(lat, cap, 0);
                    s.up = up == 1;
                    s.forecast = WaitForecast { lambda, mu: 10.0, servers: 2 }.into();
                    s.flakiness = flaky;
                    s
                })
                .collect()
        };
        for kind in RouterKind::ALL {
            let (mut a, mut b) = (kind.build(), kind.build());
            let (mut sa, mut sb) = (build_sites(), build_sites());
            let mut picks = vec![0u64; sa.len()];
            for k in 0..arrivals {
                let t = SimTime::from_secs(k);
                let ia = a.route(0, t, &sa);
                let ib = b.route(0, t, &sb);
                prop_assert_eq!(ia, ib, "{} diverged at arrival {}", kind.as_str(), k);
                picks[ia] += 1;
                sa[ia].in_flight += 1;
                sb[ib].in_flight += 1;
            }
            // Conservation at the router: every arrival routed once.
            prop_assert_eq!(picks.iter().sum::<u64>(), arrivals);
            for (i, s) in sa.iter().enumerate() {
                prop_assert_eq!(u64::from(!s.up) * picks[i], 0, "down site got traffic");
            }
        }
    }
}

proptest! {
    // End-to-end conservation runs a real simulation per case; keep the
    // case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every arrival is routed exactly once and every site-side record
    /// adds back up to the engine's aggregate.
    #[test]
    fn arrivals_are_conserved_across_sites(
        rate in 5.0f64..40.0,
        seed in 0u64..1000,
        edge_latency_ms in 0.0f64..10.0,
        cloud_latency_ms in 10.0f64..80.0,
        router_pick in 0usize..3,
    ) {
        let mut topology = Topology::new();
        topology.add_site("edge", small_cluster(1), edge_latency_ms / 1e3);
        topology.add_site("cloud", small_cluster(4), cloud_latency_ms / 1e3);
        let mut sim = FederatedSimulation::new(LassConfig::default(), topology, seed);
        sim.set_router(RouterKind::ALL[router_pick]);
        sim.add_function(testbed_setup(rate, 30.0, 1));
        let rep = sim.run(Some(30.0)).expect("runs");

        let agg = &rep.aggregate_per_fn[0];
        let routed: usize = rep.per_site.iter().map(|s| s.routed).sum();
        prop_assert_eq!(routed, agg.arrivals, "every arrival routed to a live site");
        let delivered: usize = rep.per_site.iter().map(|s| s.report.per_fn[&0].arrivals).sum();
        prop_assert!(delivered <= routed);
        let completed: usize = rep.per_site.iter().map(|s| s.report.per_fn[&0].completed).sum();
        prop_assert_eq!(completed, agg.completed);
        let timeouts: usize = rep.per_site.iter().map(|s| s.report.per_fn[&0].timeouts).sum();
        prop_assert_eq!(timeouts, agg.timeouts);
        // Everything the engine still counts as open is either in
        // transit or held by a site.
        prop_assert!(rep.outstanding >= routed - delivered);
    }
}

/// The federated edge↔cloud scenario file: deterministic under its fixed
/// seed, with offload to the cloud and per-site + aggregate stats that
/// agree.
#[test]
fn fixed_seed_federated_scenario_end_to_end() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scenarios/federated-edge-cloud.json"
    ))
    .expect("scenario file");
    let sc = Scenario::from_json(&text).expect("valid scenario");

    let run = || {
        let ScenarioReport::Federated(rep) = sc.run_report().expect("runs") else {
            panic!("expected a federated report");
        };
        rep
    };
    let (a, b) = (run(), run());
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "federated run must be deterministic under a fixed seed"
    );

    assert_eq!(a.router, "latency-aware");
    assert_eq!(a.per_site.len(), 2);
    let (edge, cloud) = (&a.per_site[0], &a.per_site[1]);
    assert_eq!(edge.name, "edge");
    assert_eq!(cloud.name, "cloud");
    // The 1-node edge cannot absorb the burst alone: offload happened.
    assert!(
        edge.routed > 0 && cloud.routed > 0,
        "no offload: {:?}",
        (edge.routed, cloud.routed)
    );
    // Latency preference: the close site takes the larger share.
    assert!(edge.routed > cloud.routed);

    // Per-site reports and the aggregate agree for every function.
    for (i, agg) in a.aggregate_per_fn.iter().enumerate() {
        let routed: usize = a.per_site.iter().map(|s| s.routed).sum();
        assert_eq!(routed, a.aggregate_per_fn.iter().map(|f| f.arrivals).sum());
        let completed: usize = a
            .per_site
            .iter()
            .map(|s| s.report.per_fn[&(i as u32)].completed)
            .sum();
        assert_eq!(completed, agg.completed, "fn {i} completion mismatch");
    }

    // Cloud waits include the 40 ms hop; edge waits only the 2 ms hop.
    let min_cloud_wait = cloud
        .report
        .per_fn
        .values()
        .flat_map(|f| f.wait.samples().iter().copied())
        .fold(f64::INFINITY, f64::min);
    assert!(
        min_cloud_wait >= 0.040 - 1e-9,
        "cloud wait {min_cloud_wait} is missing the routing hop"
    );
}

/// A federated knative run exercises the third site-policy path.
#[test]
fn federated_knative_runs_deterministically() {
    let run = || {
        let mut topology = Topology::new();
        topology.add_site("edge", small_cluster(2), 0.002);
        topology.add_site("cloud", small_cluster(4), 0.030);
        let mut sim = FederatedSimulation::new(LassConfig::default(), topology, 13);
        sim.set_policy(SitePolicyKind::Knative)
            .set_router(RouterKind::LeastLoaded);
        sim.add_function(testbed_setup(25.0, 60.0, 1));
        sim.run(Some(60.0)).expect("runs")
    };
    let (a, b) = (run(), run());
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
    let completed: usize = a
        .per_site
        .iter()
        .map(|s| s.report.per_fn[&0].completed)
        .sum();
    assert!(completed > 1000, "completed={completed}");
}
