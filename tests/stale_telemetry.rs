//! Telemetry-propagation acceptance tests.
//!
//! The stale-telemetry layer routes on the last snapshot that *arrived*
//! at the front end rather than on live site state. Three contracts pin
//! it down:
//!
//! * **Oracle parity** — `report_interval_ms: 0` disables the layer and
//!   must reproduce the classic oracle-fresh engine byte-for-byte: same
//!   serialized report as a scenario with no `telemetry` block at all.
//! * **Fixed-seed golden** — the shipped `scenarios/stale-telemetry.json`
//!   (250 ms reports, 50 ms jitter, storm chaos, slo-aware router) pins
//!   an FNV-64 hash of its full serialized report.
//! * **View discipline** — under arbitrary fault schedules and report
//!   intervals, no stale-view router may pick a site whose last-arrived
//!   snapshot (aged by the freshness window) marks it down; the
//!   federation's hot path `debug_assert`s exactly that, so driving it
//!   through random chaos in a debug-built test *is* the property
//!   check. Conservation must hold throughout, and parallel execution
//!   must stay byte-identical across worker-thread counts.

use lass::cluster::{Cluster, CpuMilli, MemMib, PlacementPolicy, Topology};
use lass::core::{FederatedSimulation, FunctionSetup, LassConfig};
use lass::functions::{micro_benchmark, WorkloadSpec};
use lass::scenario::{Scenario, ScenarioReport};
use lass::simcore::{ChaosConfig, Fault, RouterKind, SimDuration, TelemetryConfig};
use proptest::prelude::*;

fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn stale_scenario() -> Scenario {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scenarios/stale-telemetry.json"
    );
    let text = std::fs::read_to_string(path).expect("scenario file");
    Scenario::from_json(&text).expect("valid scenario")
}

fn run_federated(sc: &Scenario) -> lass::core::FederatedSimReport {
    let ScenarioReport::Federated(rep) = sc.run_report().expect("runs") else {
        panic!("expected a federated report");
    };
    rep
}

/// `report_interval_ms: 0` must be indistinguishable from never having
/// configured telemetry — the oracle-fresh hot path, byte-for-byte.
#[test]
fn interval_zero_reproduces_oracle_byte_for_byte() {
    let mut zeroed = stale_scenario();
    {
        let topo = zeroed.topology.as_mut().unwrap();
        topo.telemetry.report_interval_ms = 0.0;
        // Jitter is ignored (and validated away) when the interval is 0.
        topo.telemetry.jitter_ms = 0.0;
    }
    let mut absent = stale_scenario();
    absent.topology.as_mut().unwrap().telemetry = Default::default();

    let a = serde_json::to_string(&run_federated(&zeroed)).unwrap();
    let b = serde_json::to_string(&run_federated(&absent)).unwrap();
    assert_eq!(a, b, "interval-0 run drifted from the oracle engine");
}

/// Fixed-seed golden for the shipped staleness scenario. Telemetry
/// publish schedules, propagation delays, partition losses, passive
/// bounce detection — everything must replay bit-for-bit. If a
/// deliberate change invalidates this, re-record and say so in the
/// commit message.
#[test]
fn stale_telemetry_scenario_matches_pinned_golden() {
    let sc = stale_scenario();
    let rep = run_federated(&sc);
    assert_eq!(rep.router, "slo-aware");
    let json = serde_json::to_string(&rep).unwrap();
    assert_eq!(
        fnv64(&json),
        ROUTED_GOLDEN.0,
        "stale-telemetry golden drifted: routed = {:?}",
        rep.per_site.iter().map(|s| s.routed).collect::<Vec<_>>()
    );
    assert_eq!(
        (
            rep.per_site[0].routed,
            rep.per_site[1].routed,
            rep.per_site[2].routed
        ),
        (ROUTED_GOLDEN.1, ROUTED_GOLDEN.2, ROUTED_GOLDEN.3)
    );
    // And it replays byte-for-byte.
    assert_eq!(json, serde_json::to_string(&run_federated(&sc)).unwrap());
}

/// `(fnv64 of the serialized report, routed per site)` for
/// `scenarios/stale-telemetry.json` at seed 31.
const ROUTED_GOLDEN: (u64, usize, usize, usize) = (4726032794459219444, 5197, 4833, 1141);

fn small_cluster(nodes: u32) -> Cluster {
    Cluster::homogeneous(
        nodes,
        CpuMilli(4000),
        MemMib(16 * 1024),
        PlacementPolicy::BestFit,
    )
}

fn testbed_setup(rate: f64, duration: f64, initial: u32) -> FunctionSetup {
    let mut setup = FunctionSetup::new(
        micro_benchmark(0.1),
        0.1,
        WorkloadSpec::Static { rate, duration },
    );
    setup.initial_containers = initial;
    setup
}

fn telemetry(interval_ms: f64, jitter_ms: f64) -> TelemetryConfig {
    TelemetryConfig {
        report_interval: SimDuration::from_secs_f64(interval_ms / 1e3),
        jitter: SimDuration::from_secs_f64(jitter_ms / 1e3),
        loss_under_partition: true,
        loss_prob: 0.0,
    }
}

fn stale_sim(
    seed: u64,
    router: RouterKind,
    interval_ms: f64,
    chaos: ChaosConfig,
    parallel: Option<usize>,
) -> lass::core::FederatedSimReport {
    let mut topology = Topology::new();
    topology.add_site("a", small_cluster(1), 0.003);
    topology.add_site("b", small_cluster(2), 0.010);
    topology.add_site("c", small_cluster(1), 0.025);
    let mut sim = FederatedSimulation::new(LassConfig::default(), topology, seed);
    sim.set_router(router)
        .set_telemetry(telemetry(interval_ms, interval_ms / 4.0))
        .set_chaos(chaos)
        .set_parallel(parallel);
    sim.add_function(testbed_setup(25.0, 30.0, 1));
    sim.run(Some(30.0)).expect("runs")
}

proptest! {
    // Every case runs a real federated simulation; keep the count
    // modest.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Stale-view routing under arbitrary fault schedules, across every
    /// shipped router and a spread of report intervals. The federation
    /// `debug_assert`s that no router ever picks a site whose
    /// last-arrived snapshot marks it down (this test binary is built
    /// with debug assertions, so a violation panics the case), and the
    /// "exactly one fate" conservation invariant must survive stale
    /// views: routing on old data may be *slow*, it must never leak or
    /// invent requests.
    #[test]
    fn stale_routers_respect_views_and_conserve(
        seed in 0u64..500,
        router_idx in 0usize..6,
        interval_ms in prop_oneof![Just(50.0f64), Just(250.0), Just(1000.0), Just(4000.0)],
        schedule in prop::collection::vec(
            (1.0f64..28.0, 0u8..5, 0u32..3, 1u32..4),
            0..8,
        ),
    ) {
        let events = schedule
            .into_iter()
            .map(|(at, kind, site, count)| {
                let fault = match kind {
                    0 => Fault::SiteDown { site },
                    1 => Fault::SiteUp { site },
                    2 => Fault::PartitionStart { site },
                    3 => Fault::PartitionEnd { site },
                    _ => Fault::ContainerBurst { site, count },
                };
                (at, fault)
            })
            .collect();
        let chaos = ChaosConfig { events, ..ChaosConfig::default() };
        let rep = stale_sim(seed, RouterKind::ALL[router_idx], interval_ms, chaos, None);

        let agg = &rep.aggregate_per_fn[0];
        prop_assert_eq!(
            agg.arrivals,
            agg.completed + agg.lost + agg.timeouts + rep.outstanding,
            "conservation broke under stale telemetry"
        );
        let migrated_out: usize = rep.per_site.iter().map(|s| s.migrated).sum();
        let migrated_in: usize = rep.per_site.iter().map(|s| s.migrated_in).sum();
        prop_assert_eq!(migrated_out, migrated_in, "migration is not symmetric");
    }
}

/// With a nonzero report interval the parallel executor must stay
/// byte-identical across worker-thread counts: publish schedules are
/// drawn from site-labelled streams and telemetry events cross the
/// window barrier as ordinary calendar traffic, so the thread count
/// cannot reorder them.
#[test]
fn parallel_stale_telemetry_is_thread_count_invariant() {
    let chaos = ChaosConfig {
        events: vec![
            (8.0, Fault::SiteDown { site: 1 }),
            (14.0, Fault::SiteUp { site: 1 }),
            (18.0, Fault::PartitionStart { site: 2 }),
            (24.0, Fault::PartitionEnd { site: 2 }),
        ],
        ..ChaosConfig::default()
    };
    let run = |threads: usize| {
        serde_json::to_string(&stale_sim(
            7,
            RouterKind::SloAware,
            250.0,
            chaos.clone(),
            Some(threads),
        ))
        .unwrap()
    };
    let a = run(1);
    let b = run(2);
    let c = run(3);
    assert_eq!(a, b, "parallel stale run drifted between 1 and 2 threads");
    assert_eq!(b, c, "parallel stale run drifted between 2 and 3 threads");
}
