//! Cross-validation of the general-distribution capacity models (the
//! paper's §8 future work, implemented in `lass_queueing::approx`): size an
//! allocation with the G/G/c approximation, run the simulator with the
//! matching *non-exponential* service distribution, and check the SLO.

use lass::cluster::Cluster;
use lass::core::{FunctionSetup, LassConfig, Simulation};
use lass::functions::{FunctionSpec, ServiceDistribution, ServiceModel, WorkloadSpec};
use lass::queueing::{required_containers_general, SolverConfig, Variability};
use lass::simcore::SimDuration;

fn custom_fn(dist: ServiceDistribution) -> FunctionSpec {
    FunctionSpec {
        name: "custom".into(),
        languages: "Rust".into(),
        standard_cpu: lass::cluster::CpuMilli(400),
        standard_mem: lass::cluster::MemMib(256),
        service: ServiceModel::new(0.1, 0.7, dist),
        cold_start: SimDuration::from_millis(400),
        class: lass::functions::WorkloadClass::Compute,
    }
}

fn measure_p95(spec: FunctionSpec, containers: u32, lambda: f64, seed: u64) -> f64 {
    let mut cfg = LassConfig::default();
    cfg.autoscale = false;
    let mut sim = Simulation::new(cfg, Cluster::paper_testbed(), seed);
    let mut setup = FunctionSetup::new(
        spec,
        0.1,
        WorkloadSpec::Static {
            rate: lambda,
            duration: 600.0,
        },
    );
    setup.initial_containers = containers;
    sim.add_function(setup);
    let mut report = sim.run(Some(600.0));
    report
        .per_fn
        .get_mut(&0)
        .expect("one function")
        .wait
        .percentile(0.95)
        .expect("samples")
}

#[test]
fn mdc_model_validates_against_deterministic_service() {
    // Deterministic 100 ms service, SLO 100 ms on waiting time.
    let solver = SolverConfig::default();
    for &lambda in &[20.0, 40.0] {
        let c = required_containers_general(
            lambda,
            10.0,
            Variability::DETERMINISTIC_SERVICE,
            0.1,
            &solver,
        )
        .expect("feasible")
        .containers;
        let p95 = measure_p95(custom_fn(ServiceDistribution::Deterministic), c, lambda, 31);
        assert!(
            p95 <= 0.1,
            "M/D/c allocation c={c} missed: p95={p95:.4}s at λ={lambda}"
        );
    }
}

#[test]
fn mdc_needs_fewer_containers_than_mmc() {
    let solver = SolverConfig::default();
    let det = required_containers_general(
        50.0,
        10.0,
        Variability::DETERMINISTIC_SERVICE,
        0.05,
        &solver,
    )
    .unwrap()
    .containers;
    let exp = required_containers_general(50.0, 10.0, Variability::MARKOVIAN, 0.05, &solver)
        .unwrap()
        .containers;
    assert!(
        det <= exp,
        "M/D/c ({det}) should need at most M/M/c ({exp})"
    );
}

#[test]
fn lognormal_service_sized_by_its_cv_meets_slo() {
    // cv = 1.5 (heavier than exponential): size with the G/G/c correction
    // and validate in simulation.
    let cv = 1.5;
    let solver = SolverConfig::default();
    let lambda = 30.0;
    let c =
        required_containers_general(lambda, 10.0, Variability::from_service_cv(cv), 0.1, &solver)
            .expect("feasible")
            .containers;
    let p95 = measure_p95(
        custom_fn(ServiceDistribution::LogNormal { cv }),
        c,
        lambda,
        37,
    );
    assert!(p95 <= 0.11, "G/G/c allocation c={c} missed: p95={p95:.4}s");

    // And the exponential-sized allocation would be smaller — i.e. the
    // correction is doing real work.
    let c_exp = required_containers_general(lambda, 10.0, Variability::MARKOVIAN, 0.1, &solver)
        .unwrap()
        .containers;
    assert!(
        c >= c_exp,
        "cv=1.5 sizing ({c}) >= exponential sizing ({c_exp})"
    );
}
