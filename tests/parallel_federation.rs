//! Parallel federated executor: determinism and differential tests.
//!
//! Three families:
//!
//! * **Thread-count byte-identity** — fixed-seed federated runs (plain
//!   and chaos-storm) serialize to identical FNV-64 report hashes at
//!   `parallel_sites` ∈ {1, 2, 8}: the windowed executor's merge order
//!   is `(time, site, log-index)`, independent of how many worker
//!   threads drained the shards.
//! * **Sequential differential oracle** — under a telemetry-free router
//!   (round-robin) and a deterministic-service policy, none of the
//!   parallel executor's documented divergences (per-site service
//!   streams, barrier-stale telemetry, same-instant cross-site ties)
//!   applies, so the parallel report must equal the sequential
//!   federation's report byte-for-byte — with and without chaos.
//! * **Conservation proptest** — randomized topologies, latencies and
//!   fault schedules conserve every request across shard boundaries
//!   (exactly one fate: completed, lost, timed out, or outstanding;
//!   migration symmetric), and two different thread counts hash
//!   identically on every sampled case.

use lass::simcore::{
    run_federation_parallel, run_simulation, ChaosConfig, ChaosPolicy, ContainerChaos,
    EngineConfig, EngineOutcome, Fault, FedFunction, FederatedReport, Federation, FnStats,
    FunctionEntry, PolicyCtx, ReqId, RouterKind, SchedulerPolicy, SimDuration, SimTime, SiteMeta,
    StaticPoisson,
};
use proptest::prelude::*;
use std::collections::VecDeque;

fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A deterministic single-server FCFS policy: fixed service time, no
/// RNG draws. With a round-robin router this makes the parallel run
/// bit-identical to the sequential one (see the module docs of
/// `lass_simcore::parallel`).
struct FixedServer {
    busy: bool,
    queue: VecDeque<ReqId>,
    service: SimDuration,
}

impl FixedServer {
    fn new(service_secs: f64) -> Self {
        Self {
            busy: false,
            queue: VecDeque::new(),
            service: SimDuration::from_secs_f64(service_secs),
        }
    }
}

enum FsEv {
    Done(ReqId, SimTime),
}

impl SchedulerPolicy for FixedServer {
    type Event = FsEv;
    type Report = Vec<FnStats>;

    fn on_start(&mut self, _ctx: &mut impl PolicyCtx<FsEv>) {}

    fn on_arrival(&mut self, ctx: &mut impl PolicyCtx<FsEv>, rid: ReqId, _f: u32, now: SimTime) {
        if self.busy {
            self.queue.push_back(rid);
        } else {
            self.busy = true;
            ctx.schedule(now + self.service, FsEv::Done(rid, now));
        }
    }

    fn on_event(&mut self, ctx: &mut impl PolicyCtx<FsEv>, ev: FsEv, now: SimTime) {
        let FsEv::Done(rid, started) = ev;
        ctx.complete(rid, started, now);
        self.busy = false;
        if let Some(next) = self.queue.pop_front() {
            self.busy = true;
            ctx.schedule(now + self.service, FsEv::Done(next, now));
        }
    }

    fn finish(self, outcome: EngineOutcome) -> Vec<FnStats> {
        outcome.per_fn
    }
}

impl ContainerChaos for FixedServer {}

/// A stochastic two-server policy that draws service times from the
/// engine's labelled service streams — exercises the per-site RNG path
/// of the parallel executor.
struct StochServer {
    servers: usize,
    busy: usize,
    queue: VecDeque<ReqId>,
    mean: f64,
}

impl StochServer {
    fn new(servers: usize, mean: f64) -> Self {
        Self {
            servers,
            busy: 0,
            queue: VecDeque::new(),
            mean,
        }
    }

    fn start(&mut self, ctx: &mut impl PolicyCtx<FsEv>, rid: ReqId, fn_idx: u32, now: SimTime) {
        self.busy += 1;
        let s = ctx.service_rng(fn_idx).exp(1.0 / self.mean);
        ctx.schedule(now + SimDuration::from_secs_f64(s), FsEv::Done(rid, now));
    }
}

impl SchedulerPolicy for StochServer {
    type Event = FsEv;
    type Report = Vec<FnStats>;

    fn on_start(&mut self, _ctx: &mut impl PolicyCtx<FsEv>) {}

    fn on_arrival(
        &mut self,
        ctx: &mut impl PolicyCtx<FsEv>,
        rid: ReqId,
        fn_idx: u32,
        now: SimTime,
    ) {
        if self.busy < self.servers {
            self.start(ctx, rid, fn_idx, now);
        } else {
            self.queue.push_back(rid);
        }
    }

    fn on_event(&mut self, ctx: &mut impl PolicyCtx<FsEv>, ev: FsEv, now: SimTime) {
        let FsEv::Done(rid, started) = ev;
        ctx.complete(rid, started, now);
        self.busy -= 1;
        if let Some(next) = self.queue.pop_front() {
            let fn_idx = ctx.request_info(next).map_or(0, |(f, _)| f);
            self.start(ctx, next, fn_idx, now);
        }
    }

    fn finish(self, outcome: EngineOutcome) -> Vec<FnStats> {
        outcome.per_fn
    }
}

impl ContainerChaos for StochServer {}

fn fed_functions() -> Vec<FedFunction> {
    vec![FedFunction {
        name: "probe".into(),
        slo_deadline: 0.5,
        demand: [0.0; 3],
    }]
}

fn probe_entry(rate: f64) -> Vec<FunctionEntry> {
    vec![FunctionEntry {
        name: "probe".into(),
        slo_deadline: 0.5,
        process: Box::new(StaticPoisson::until(rate, SimTime::from_secs(60))),
    }]
}

fn metas(latencies_ms: &[f64]) -> Vec<SiteMeta> {
    latencies_ms
        .iter()
        .enumerate()
        .map(|(i, &ms)| SiteMeta {
            name: format!("s{i}"),
            latency: SimDuration::from_secs_f64(ms / 1000.0),
            capacity_hint: 2.0,
        })
        .collect()
}

fn engine_cfg(seed: u64, parallel: Option<usize>) -> EngineConfig {
    EngineConfig {
        seed,
        parallel_sites: parallel,
        ..EngineConfig::default()
    }
}

fn fixed_fed(kind: RouterKind, latencies_ms: &[f64], service_secs: f64) -> Federation<FixedServer> {
    let sites = metas(latencies_ms)
        .into_iter()
        .map(|m| (m, FixedServer::new(service_secs)))
        .collect();
    Federation::new(sites, kind.build(), &fed_functions())
        .with_rebuild(Box::new(move |_, _| FixedServer::new(service_secs)))
}

fn stoch_fed(kind: RouterKind, latencies_ms: &[f64], mean: f64) -> Federation<StochServer> {
    let sites = metas(latencies_ms)
        .into_iter()
        .map(|m| (m, StochServer::new(2, mean)))
        .collect();
    Federation::new(sites, kind.build(), &fed_functions())
        .with_rebuild(Box::new(move |_, _| StochServer::new(2, mean)))
}

fn storm() -> ChaosConfig {
    ChaosConfig {
        events: vec![
            (20.0, Fault::SiteDown { site: 0 }),
            (25.0, Fault::PartitionStart { site: 1 }),
            (35.0, Fault::PartitionEnd { site: 1 }),
            (40.0, Fault::SiteUp { site: 0 }),
            (45.0, Fault::ContainerBurst { site: 2, count: 2 }),
        ],
        site_mtbf_secs: Some(40.0),
        site_mttr_secs: 10.0,
        ..ChaosConfig::default()
    }
}

fn report_json(rep: &FederatedReport<Vec<FnStats>>) -> String {
    serde_json::to_string(rep).expect("serializes")
}

const LATS: [f64; 4] = [13.0, 29.0, 47.0, 61.0];

fn run_parallel_stoch(threads: usize, chaos: ChaosConfig) -> FederatedReport<Vec<FnStats>> {
    run_federation_parallel(
        engine_cfg(11, Some(threads)),
        probe_entry(8.0),
        stoch_fed(RouterKind::LeastLoaded, &LATS, 0.2),
        chaos,
        11,
    )
}

#[test]
fn thread_count_does_not_change_the_bytes() {
    let h1 = fnv64(&report_json(&run_parallel_stoch(1, ChaosConfig::default())));
    let h2 = fnv64(&report_json(&run_parallel_stoch(2, ChaosConfig::default())));
    let h8 = fnv64(&report_json(&run_parallel_stoch(8, ChaosConfig::default())));
    assert_eq!(h1, h2, "1 vs 2 worker threads diverged");
    assert_eq!(h1, h8, "1 vs 8 worker threads diverged");
    // And the run actually did something.
    let rep = run_parallel_stoch(2, ChaosConfig::default());
    assert!(rep.aggregate_per_fn[0].completed > 100);
}

#[test]
fn thread_count_does_not_change_the_bytes_under_chaos() {
    let h1 = fnv64(&report_json(&run_parallel_stoch(1, storm())));
    let h2 = fnv64(&report_json(&run_parallel_stoch(2, storm())));
    let h8 = fnv64(&report_json(&run_parallel_stoch(8, storm())));
    assert_eq!(h1, h2, "1 vs 2 worker threads diverged under chaos");
    assert_eq!(h1, h8, "1 vs 8 worker threads diverged under chaos");
    // The storm must actually bite for the test to mean anything.
    let rep = run_parallel_stoch(2, storm());
    let migrated: usize = rep.per_site.iter().map(|s| s.migrated).sum();
    assert!(migrated > 0, "no migrations — chaos did not engage");
    assert!(rep.per_site[0].downtime_secs > 0.0);
}

#[test]
fn parallel_matches_sequential_exactly_for_rr_and_fixed_service() {
    let seq = run_simulation(
        engine_cfg(11, None),
        probe_entry(8.0),
        fixed_fed(RouterKind::RoundRobin, &LATS, 0.05),
    );
    let par = run_federation_parallel(
        engine_cfg(11, Some(3)),
        probe_entry(8.0),
        fixed_fed(RouterKind::RoundRobin, &LATS, 0.05),
        ChaosConfig::default(),
        11,
    );
    assert_eq!(
        report_json(&seq),
        report_json(&par),
        "parallel run is not bit-identical to the sequential oracle"
    );
}

#[test]
fn parallel_matches_sequential_exactly_under_chaos() {
    // Saturated fixed-service sites so every fault catches requests in
    // flight: crash orphans migrate, the partition stalls responses,
    // in-transit deliveries bounce.
    let chaos = storm();
    let seq = run_simulation(
        engine_cfg(11, None),
        probe_entry(8.0),
        ChaosPolicy::new(
            fixed_fed(RouterKind::RoundRobin, &LATS, 0.3),
            chaos.clone(),
            11,
        ),
    );
    let par = run_federation_parallel(
        engine_cfg(11, Some(4)),
        probe_entry(8.0),
        fixed_fed(RouterKind::RoundRobin, &LATS, 0.3),
        chaos,
        11,
    );
    let (sj, pj) = (report_json(&seq), report_json(&par));
    assert_eq!(
        sj, pj,
        "chaos parallel run is not bit-identical to the sequential oracle"
    );
    // The differential is only meaningful if the faults engaged.
    assert!(par.per_site.iter().map(|s| s.migrated).sum::<usize>() > 0);
}

#[test]
#[should_panic(expected = "latency > 0")]
fn zero_latency_topologies_are_rejected() {
    run_federation_parallel(
        engine_cfg(1, Some(2)),
        probe_entry(4.0),
        fixed_fed(RouterKind::RoundRobin, &[0.0, 20.0], 0.05),
        ChaosConfig::default(),
        1,
    );
}

proptest! {
    // Every case runs two real federated simulations; keep the count
    // modest.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Randomized topologies and fault schedules conserve requests
    /// across shard boundaries, and two different worker pools produce
    /// identical bytes.
    #[test]
    fn randomized_topologies_conserve_requests(
        seed in 0u64..1000,
        lat_ms in prop::collection::vec(1.0f64..80.0, 2..6),
        schedule in prop::collection::vec(
            (5.0f64..55.0, 0u8..5, 0u32..2, 1u32..3),
            0..6,
        ),
    ) {
        let events = schedule
            .into_iter()
            .map(|(at, kind, site, count)| {
                let fault = match kind {
                    0 => Fault::SiteDown { site },
                    1 => Fault::SiteUp { site },
                    2 => Fault::PartitionStart { site },
                    3 => Fault::PartitionEnd { site },
                    _ => Fault::ContainerBurst { site, count },
                };
                (at, fault)
            })
            .collect();
        let chaos = ChaosConfig { events, ..ChaosConfig::default() };
        let run = |threads: usize| {
            run_federation_parallel(
                engine_cfg(seed, Some(threads)),
                probe_entry(10.0),
                stoch_fed(RouterKind::RoundRobin, &lat_ms, 0.15),
                chaos.clone(),
                seed,
            )
        };
        let rep = run(2);

        let agg = &rep.aggregate_per_fn[0];
        prop_assert_eq!(
            agg.arrivals,
            agg.completed + agg.lost + agg.timeouts + rep.outstanding,
            "conservation broke"
        );
        let migrated_out: usize = rep.per_site.iter().map(|s| s.migrated).sum();
        let migrated_in: usize = rep.per_site.iter().map(|s| s.migrated_in).sum();
        prop_assert_eq!(migrated_out, migrated_in, "migration is not symmetric");
        let failed: usize = rep.per_site.iter().map(|s| s.failed).sum();
        prop_assert_eq!(failed + rep.unroutable, agg.lost);
        // Per-site delivered arrivals never exceed what the router sent.
        let routed: usize = rep.per_site.iter().map(|s| s.routed).sum();
        prop_assert_eq!(routed + rep.unroutable, agg.arrivals + migrated_in);

        let other = run(5);
        prop_assert_eq!(
            fnv64(&report_json(&rep)),
            fnv64(&report_json(&other)),
            "2 vs 5 worker threads diverged"
        );
    }
}
