//! Engine-port parity goldens.
//!
//! Before `core/simulation.rs` and `openwhisk/baseline.rs` were ported
//! onto the shared discrete-event engine (`lass_simcore::engine`), the
//! pre-refactor simulators were run at fixed seeds and their summary
//! statistics — including an FNV-64 hash of the entire serialized
//! report — were recorded here. The ported policies must reproduce every
//! value **bit-for-bit**: same RNG stream labels, same event ordering,
//! same statistics accumulation order.
//!
//! If a deliberate behavioural change ever invalidates these numbers,
//! re-record them and say so in the commit message — a silent drift here
//! means the port changed simulation semantics.

use lass::cluster::Cluster;
use lass::core::{FunctionSetup, LassConfig, Simulation};
use lass::functions::{binary_alert, micro_benchmark, mobilenet_v2, WorkloadSpec};
use lass::openwhisk::{OwConfig, OwFunctionSetup, OwSimulation};

fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn scenario_a() -> lass::core::SimReport {
    let mut sim = Simulation::new(LassConfig::default(), Cluster::paper_testbed(), 42);
    let mut setup = FunctionSetup::new(
        micro_benchmark(0.1),
        0.1,
        WorkloadSpec::Static {
            rate: 20.0,
            duration: 120.0,
        },
    );
    setup.initial_containers = 1;
    sim.add_function(setup);
    sim.run(Some(120.0))
}

#[test]
fn lass_single_function_matches_pre_refactor_goldens() {
    let report = scenario_a();
    let f = &report.per_fn[&0];
    assert_eq!(f.arrivals, 2358);
    assert_eq!(f.completed, 2358);
    assert_eq!(f.reruns, 0);
    assert_eq!(f.timeouts, 0);
    assert_eq!(f.slo_violations, 313);
    assert_eq!(f.wait.count(), 2358);
    assert_eq!(report.epochs, 12);
    assert_eq!(report.overloaded_epochs, 0);
    assert_eq!(report.failed_creates, 0);
    assert_eq!(report.crashes, 0);
    assert_eq!(f.wait.mean().unwrap().to_bits(), 4600885491099660003);
    assert_eq!(report.busy_utilization.to_bits(), 4589391036886297787);
    assert_eq!(report.allocated_utilization.to_bits(), 4594772509834817879);
    let json = serde_json::to_string(&report).unwrap();
    assert_eq!(
        fnv64(&json),
        6027010988220804034,
        "full-report hash drifted"
    );
}

#[test]
fn lass_two_functions_match_pre_refactor_goldens() {
    let mut sim = Simulation::new(LassConfig::default(), Cluster::paper_testbed(), 11);
    sim.add_function(FunctionSetup::new(
        micro_benchmark(0.1),
        0.1,
        WorkloadSpec::Static {
            rate: 10.0,
            duration: 120.0,
        },
    ));
    sim.add_function(FunctionSetup::new(
        binary_alert(),
        0.1,
        WorkloadSpec::Static {
            rate: 20.0,
            duration: 120.0,
        },
    ));
    let report = sim.run(Some(120.0));
    assert_eq!(
        (
            report.per_fn[&0].arrivals,
            report.per_fn[&0].completed,
            report.per_fn[&0].slo_violations
        ),
        (1192, 1192, 145)
    );
    assert_eq!(
        (
            report.per_fn[&1].arrivals,
            report.per_fn[&1].completed,
            report.per_fn[&1].slo_violations
        ),
        (2325, 2325, 303)
    );
    let json = serde_json::to_string(&report).unwrap();
    assert_eq!(
        fnv64(&json),
        11229586572688345218,
        "full-report hash drifted"
    );
}

#[test]
fn openwhisk_cascade_matches_pre_refactor_goldens() {
    let mut sim = OwSimulation::new(OwConfig::default());
    sim.add_function(OwFunctionSetup {
        spec: binary_alert(),
        workload: WorkloadSpec::Static {
            rate: 10.0,
            duration: 120.0,
        },
        slo_deadline: 0.1,
    });
    sim.add_function(OwFunctionSetup {
        spec: mobilenet_v2(),
        workload: WorkloadSpec::Steps {
            steps: vec![(0.0, 0.0), (30.0, 40.0)],
            duration: 600.0,
        },
        slo_deadline: 0.1,
    });
    let report = sim.run(Some(600.0));
    assert_eq!(
        (
            report.per_fn[&0].arrivals,
            report.per_fn[&0].completed,
            report.per_fn[&0].lost
        ),
        (1239, 884, 255)
    );
    assert_eq!(
        (
            report.per_fn[&1].arrivals,
            report.per_fn[&1].completed,
            report.per_fn[&1].lost
        ),
        (22781, 257, 20279)
    );
    assert_eq!(report.failures.len(), 3);
    assert_eq!(report.outstanding, 2345);
    assert_eq!(
        report.cascade_complete_at.map(f64::to_bits),
        Some(4635506196350034989)
    );
    let json = serde_json::to_string(&report).unwrap();
    assert_eq!(
        fnv64(&json),
        17943746593620683722,
        "full-report hash drifted"
    );
}

#[test]
fn single_site_topology_matches_pre_refactor_goldens() {
    // The degenerate federated path (one zero-latency site) must hit the
    // same pre-refactor goldens as the plain run: same arrival stream,
    // same event order, same statistics, same serialized bytes.
    let mut sim = lass::core::FederatedSimulation::new(
        LassConfig::default(),
        lass::cluster::Topology::single(Cluster::paper_testbed()),
        42,
    );
    let mut setup = FunctionSetup::new(
        micro_benchmark(0.1),
        0.1,
        WorkloadSpec::Static {
            rate: 20.0,
            duration: 120.0,
        },
    );
    setup.initial_containers = 1;
    sim.add_function(setup);
    let fed = sim.run(Some(120.0)).expect("runs");
    let report = &fed.per_site[0].report;
    let f = &report.per_fn[&0];
    assert_eq!(f.arrivals, 2358);
    assert_eq!(f.completed, 2358);
    assert_eq!(f.slo_violations, 313);
    assert_eq!(f.wait.mean().unwrap().to_bits(), 4600885491099660003);
    assert_eq!(report.busy_utilization.to_bits(), 4589391036886297787);
    assert_eq!(report.allocated_utilization.to_bits(), 4594772509834817879);
    let json = serde_json::to_string(report).unwrap();
    assert_eq!(
        fnv64(&json),
        6027010988220804034,
        "single-site topology drifted from the plain-run golden"
    );
}

#[test]
fn same_seed_gives_byte_identical_serialized_reports() {
    // Determinism satellite: two runs at the same seed serialize to the
    // exact same bytes, for every policy.
    let (a, b) = (scenario_a(), scenario_a());
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );

    let ow = || {
        let mut sim = OwSimulation::new(OwConfig::default());
        sim.add_function(OwFunctionSetup {
            spec: binary_alert(),
            workload: WorkloadSpec::Static {
                rate: 10.0,
                duration: 60.0,
            },
            slo_deadline: 0.1,
        });
        sim.run(Some(60.0))
    };
    assert_eq!(
        serde_json::to_string(&ow()).unwrap(),
        serde_json::to_string(&ow()).unwrap()
    );

    let srr = || {
        let mut sim = lass::core::StaticRrSimulation::new(Cluster::paper_testbed(), 5);
        let mut setup = FunctionSetup::new(
            micro_benchmark(0.1),
            0.1,
            WorkloadSpec::Static {
                rate: 12.0,
                duration: 60.0,
            },
        );
        setup.initial_containers = 3;
        sim.add_function(setup);
        sim.run(Some(60.0))
    };
    assert_eq!(
        serde_json::to_string(&srr()).unwrap(),
        serde_json::to_string(&srr()).unwrap()
    );
}

#[test]
fn lass_and_static_policies_decorrelate_but_share_workload_shape() {
    // Same scenario through two engine policies: arrival counts are close
    // (same rate, decorrelated streams) and both serve the load.
    let lass = scenario_a();
    let mut sim = lass::core::StaticRrSimulation::new(Cluster::paper_testbed(), 42);
    let mut setup = FunctionSetup::new(
        micro_benchmark(0.1),
        0.1,
        WorkloadSpec::Static {
            rate: 20.0,
            duration: 120.0,
        },
    );
    setup.initial_containers = 4;
    sim.add_function(setup);
    let srr = sim.run(Some(120.0));
    let (a, b) = (
        lass.per_fn[&0].arrivals as f64,
        srr.per_fn[&0].arrivals as f64,
    );
    assert!(
        (a - b).abs() < a * 0.1,
        "arrival counts wildly differ: {a} vs {b}"
    );
    assert!(srr.per_fn[&0].completed as f64 > b * 0.99);
}

/// Fixed-seed golden for the model-driven routing layer: the
/// `slo-routing` scenario (slo-aware router over an edge↔cloud LaSS
/// federation) pins its full serialized federated report. Telemetry,
/// forecasts, hysteresis — everything must replay bit-for-bit. If a
/// deliberate routing change invalidates this, re-record and say so in
/// the commit message.
/// The multi-dimensional acceptance pin: on the memory-bound scenario
/// (edge nodes whose memory is exactly exhausted by the warm fleet, a
/// memory-class function, fixed seed 21) the vector-aware planner
/// achieves strictly higher SLO attainment than least-loaded *and*
/// slo-aware, because it is the only router that sees the edge's
/// binding dimension is full and stops feeding it. The planner run
/// itself replays byte-for-byte.
#[test]
fn planner_beats_baselines_on_memory_bound_scenario() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/memory-bound.json");
    let text = std::fs::read_to_string(path).expect("scenario file");
    assert!(
        text.contains("\"planner\""),
        "scenario must ship the planner"
    );
    let run = |router: &str| {
        let swapped = text.replace("\"planner\"", &format!("\"{router}\""));
        let sc = lass::scenario::Scenario::from_json(&swapped).expect("valid scenario");
        let lass::scenario::ScenarioReport::Federated(rep) = sc.run_report().expect("runs") else {
            panic!("expected a federated report");
        };
        rep
    };
    let attainment = |rep: &lass::core::FederatedSimReport| -> f64 {
        let (mut done, mut viol) = (0usize, 0usize);
        for site in &rep.per_site {
            for f in site.report.per_fn.values() {
                done += f.completed;
                viol += f.slo_violations;
            }
        }
        1.0 - viol as f64 / done as f64
    };

    let planner = run("planner");
    let ll = run("least-loaded");
    let slo = run("slo-aware");
    // The planner routes far less to the memory-full edge than either
    // capacity-blind baseline…
    assert!(
        planner.per_site[0].routed * 2 < ll.per_site[0].routed,
        "planner kept feeding the full edge: {} vs {}",
        planner.per_site[0].routed,
        ll.per_site[0].routed
    );
    assert!(planner.per_site[0].routed * 2 < slo.per_site[0].routed);
    // …and converts that into strictly better SLO attainment.
    let (pa, la, sa) = (attainment(&planner), attainment(&ll), attainment(&slo));
    assert!(
        pa > la && pa > sa,
        "planner must win on attainment: planner {pa:.4}, least-loaded {la:.4}, slo-aware {sa:.4}"
    );
    // Fixed seed, fixed bytes.
    assert_eq!(
        serde_json::to_string(&planner).unwrap(),
        serde_json::to_string(&run("planner")).unwrap(),
        "memory-bound planner run must replay byte-for-byte"
    );
}

#[test]
fn slo_aware_scenario_matches_pinned_golden() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/slo-routing.json");
    let text = std::fs::read_to_string(path).expect("scenario file");
    let sc = lass::scenario::Scenario::from_json(&text).expect("valid scenario");
    let run = || {
        let lass::scenario::ScenarioReport::Federated(rep) = sc.run_report().expect("runs") else {
            panic!("expected a federated report");
        };
        rep
    };
    let rep = run();
    assert_eq!(rep.router, "slo-aware");
    assert_eq!(
        (rep.per_site[0].routed, rep.per_site[1].routed),
        (2500, 2252)
    );
    let json = serde_json::to_string(&rep).unwrap();
    assert_eq!(
        fnv64(&json),
        17219371903003920091,
        "slo-aware routing golden drifted"
    );
    // And it replays byte-for-byte.
    assert_eq!(json, serde_json::to_string(&run()).unwrap());
}
