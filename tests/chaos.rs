//! Chaos-injection integration tests.
//!
//! Four families:
//!
//! * **Fixed-seed chaos goldens** — the shipped `scenarios/chaos-*.json`
//!   files (site crash + recovery, partition, migration) serialize to
//!   identical FNV-64 hashes across repeated runs: every fault is drawn
//!   from labelled deterministic RNG streams, so a chaos run is exactly
//!   as reproducible as a fault-free one.
//! * **No-chaos transparency** — a `ChaosPolicy` wrapper with an empty
//!   schedule reproduces the plain runs byte-for-byte (same pattern as
//!   `tests/federation.rs`); together with `golden_parity.rs` this pins
//!   the chaos code path to the pre-refactor goldens transitively.
//! * **Conservation invariants** (property tests) — under random fault
//!   schedules every arrival is exactly one of completed, failed
//!   (lost), timed out, or still outstanding; cross-site migration is
//!   symmetric (every migrated-out request is migrated-in somewhere).
//! * **`lass-sweep` output** — the chaos-profile grid is complete and
//!   rows are deterministic per seed (the binary is parsed, not just
//!   smoke-run).

use lass::cluster::{Cluster, CpuMilli, MemMib, PlacementPolicy, Topology};
use lass::core::{FederatedSimulation, FunctionSetup, LassConfig, SimReport, Simulation};
use lass::functions::{micro_benchmark, WorkloadSpec};
use lass::scenario::{Scenario, ScenarioReport};
use lass::simcore::{ChaosConfig, Fault, RouterKind};
use proptest::prelude::*;

fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn run_scenario_file(name: &str) -> lass::core::FederatedSimReport {
    let path = format!("{}/scenarios/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).expect("scenario file");
    let sc = Scenario::from_json(&text).expect("valid scenario");
    let ScenarioReport::Federated(rep) = sc.run_report().expect("runs") else {
        panic!("expected a federated report from {name}");
    };
    rep
}

/// The acceptance scenario: site crash at t = 60 s, recovery at
/// t = 120 s. Two runs must produce identical FNV-64 hashes of the full
/// serialized report, and the faults must actually bite.
#[test]
fn site_crash_scenario_hashes_are_reproducible() {
    let a = run_scenario_file("chaos-site-crash.json");
    let b = run_scenario_file("chaos-site-crash.json");
    let ja = serde_json::to_string(&a).unwrap();
    let jb = serde_json::to_string(&b).unwrap();
    assert_eq!(
        fnv64(&ja),
        fnv64(&jb),
        "chaos run must be byte-for-byte reproducible under its seed"
    );
    assert_eq!(ja, jb);

    let edge = &a.per_site[0];
    assert_eq!(edge.name, "edge");
    // Crash at 60, recovery at 120: exactly 60 s of downtime.
    assert!(
        (edge.downtime_secs - 60.0).abs() < 1e-6,
        "downtime {}",
        edge.downtime_secs
    );
    // The orphans of the crash migrated to the surviving cloud site.
    assert!(edge.migrated > 0, "no cross-site migration happened");
    assert_eq!(a.per_site[1].migrated_in, edge.migrated);
    // Nothing was failed: the cloud had capacity for the orphans.
    assert_eq!(edge.failed + a.per_site[1].failed, 0);
    assert_eq!(a.unroutable, 0);
}

#[test]
fn partition_scenario_hashes_are_reproducible() {
    let a = run_scenario_file("chaos-partition.json");
    let b = run_scenario_file("chaos-partition.json");
    assert_eq!(
        fnv64(&serde_json::to_string(&a).unwrap()),
        fnv64(&serde_json::to_string(&b).unwrap())
    );
    let edge = &a.per_site[0];
    // Partition from 45 to 75: 30 s unroutable, but nothing failed or
    // crashed — the site kept its work and released it at the heal.
    assert!(
        (edge.downtime_secs - 30.0).abs() < 1e-6,
        "downtime {}",
        edge.downtime_secs
    );
    assert_eq!(edge.failed, 0);
    // The burst at t = 100 crashed cloud containers.
    assert_eq!(a.per_site[1].chaos_crashes, 3);
    assert_eq!(a.per_site[1].report.crashes, 3);
    // Stalled responses surface as a response-time tail ≥ the stall.
    let max_response = edge
        .report
        .per_fn
        .values()
        .flat_map(|f| f.response.samples().iter().copied())
        .fold(0.0f64, f64::max);
    assert!(
        max_response >= 1.0,
        "no stalled response visible (max {max_response})"
    );
}

#[test]
fn stochastic_chaos_is_deterministic_per_seed() {
    let a = run_scenario_file("chaos-stochastic.json");
    let b = run_scenario_file("chaos-stochastic.json");
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
    // The storm must actually do something under this seed.
    let downtime: f64 = a.per_site.iter().map(|s| s.downtime_secs).sum();
    assert!(downtime > 0.0, "no site ever went down");
    let agg = &a.aggregate_per_fn[0];
    assert_eq!(
        agg.arrivals,
        agg.completed + agg.lost + agg.timeouts + a.outstanding
    );
}

fn testbed_setup(rate: f64, duration: f64, initial: u32) -> FunctionSetup {
    let mut setup = FunctionSetup::new(
        micro_benchmark(0.1),
        0.1,
        WorkloadSpec::Static { rate, duration },
    );
    setup.initial_containers = initial;
    setup
}

/// A `ChaosPolicy` wrapper with an empty schedule reproduces the plain
/// single-cluster run byte-for-byte — the explicit no-chaos parity pin
/// (every federated run goes through the wrapper, so this also guards
/// the production path).
#[test]
fn no_chaos_wrapper_reproduces_plain_run_byte_for_byte() {
    let plain: SimReport = {
        let mut sim = Simulation::new(LassConfig::default(), Cluster::paper_testbed(), 42);
        sim.add_function(testbed_setup(20.0, 120.0, 1));
        sim.run(Some(120.0))
    };
    let fed = {
        let mut sim = FederatedSimulation::new(
            LassConfig::default(),
            Topology::single(Cluster::paper_testbed()),
            42,
        );
        // An explicitly-default chaos config: schedules nothing.
        sim.set_chaos(ChaosConfig::default());
        sim.add_function(testbed_setup(20.0, 120.0, 1));
        sim.run(Some(120.0)).expect("runs")
    };
    assert_eq!(
        serde_json::to_string(&fed.per_site[0].report).unwrap(),
        serde_json::to_string(&plain).unwrap(),
        "no-chaos wrapper drifted from the plain run"
    );
    assert_eq!(fed.per_site[0].migrated, 0);
    assert_eq!(fed.per_site[0].downtime_secs, 0.0);
}

/// Brown-out golden: a [`Fault::SiteSlowdown`] stretches the slowed
/// site's service times without ever starting the downtime clock — the
/// site keeps serving and stays routable, nothing fails, and the
/// degradation is visible to the health EWMA (nonzero flakiness), which
/// is exactly the signal the failure-aware router acts on. The run is
/// byte-for-byte reproducible under its seed, and a `permille ≥ 1000`
/// event restores nominal speed.
#[test]
fn site_slowdown_brownout_is_reproducible_and_visible() {
    let slowdown = || ChaosConfig {
        events: vec![
            (
                5.0,
                Fault::SiteSlowdown {
                    site: 0,
                    permille: 250,
                },
            ),
            (
                28.0,
                Fault::SiteSlowdown {
                    site: 0,
                    permille: 1000,
                },
            ),
        ],
        ..ChaosConfig::default()
    };
    let a = two_site_sim(11, slowdown());
    let b = two_site_sim(11, slowdown());
    let ja = serde_json::to_string(&a).unwrap();
    assert_eq!(
        fnv64(&ja),
        fnv64(&serde_json::to_string(&b).unwrap()),
        "brown-out run must be byte-for-byte reproducible under its seed"
    );
    let baseline = two_site_sim(11, ChaosConfig::default());

    let slowed = &a.per_site[0];
    // A brown-out is not an outage: the site stayed up and routable the
    // whole run, kept its work, and nothing failed or migrated.
    assert_eq!(slowed.downtime_secs, 0.0);
    assert_eq!(slowed.failed, 0);
    assert_eq!(slowed.migrated, 0);
    assert_eq!(a.unroutable, 0);
    // The health EWMA saw the degradation; the fault-free twin did not.
    assert!(slowed.flakiness > 0.0, "flakiness {}", slowed.flakiness);
    assert_eq!(baseline.per_site[0].flakiness, 0.0);
    // And service genuinely slowed: the worst response on the
    // browned-out site dwarfs the fault-free run's.
    let max_response = |rep: &lass::core::FederatedSimReport| -> f64 {
        rep.per_site[0]
            .report
            .per_fn
            .values()
            .flat_map(|f| f.response.samples().iter().copied())
            .fold(0.0f64, f64::max)
    };
    assert!(
        max_response(&a) > 2.0 * max_response(&baseline),
        "slowdown did not bite: {} vs {}",
        max_response(&a),
        max_response(&baseline)
    );
    // Every arrival still has exactly one fate.
    let agg = &a.aggregate_per_fn[0];
    assert_eq!(
        agg.arrivals,
        agg.completed + agg.lost + agg.timeouts + a.outstanding
    );
}

/// The scenario layer's `"site-slowdown"` chaos kind: `factor` (a
/// service-speed multiplier) parses into the permille brown-out and
/// drives a real federated run end to end.
#[test]
fn scenario_site_slowdown_parses_and_runs() {
    let spec = r#"{
        "seed": 13,
        "policy": "lass",
        "topology": {
            "router": "least-loaded",
            "sites": [
                { "name": "a", "cluster": { "nodes": 1, "cpu_milli": 4000, "mem_mib": 16384 }, "latency_ms": 2 },
                { "name": "b", "cluster": { "nodes": 2, "cpu_milli": 4000, "mem_mib": 16384 }, "latency_ms": 20 }
            ]
        },
        "chaos": {
            "name": "brownout-a",
            "events": [
                { "at": 5.0, "kind": "site-slowdown", "site": "a", "factor": 0.25 },
                { "at": 28.0, "kind": "site-slowdown", "site": "a", "factor": 1.0 }
            ]
        },
        "functions": [
            {
                "function": "micro_benchmark:100",
                "slo_ms": 150,
                "workload": { "Static": { "rate": 20.0, "duration": 30.0 } },
                "initial_containers": 1
            }
        ]
    }"#;
    let sc = Scenario::from_json(spec).expect("valid scenario");
    let ScenarioReport::Federated(rep) = sc.run_report().expect("runs") else {
        panic!("expected a federated report");
    };
    assert!(
        rep.per_site[0].flakiness > 0.0,
        "brown-out invisible to the health EWMA"
    );
    assert_eq!(rep.per_site[0].downtime_secs, 0.0);
    assert_eq!(rep.per_site[0].failed, 0);

    // An invalid factor is rejected at parse/validate time.
    let bad = spec.replace("0.25", "0.0");
    assert!(
        Scenario::from_json(&bad)
            .and_then(|s| s.run_report().map(|_| ()))
            .is_err(),
        "factor 0.0 must be rejected"
    );
}

fn small_cluster(nodes: u32) -> Cluster {
    Cluster::homogeneous(
        nodes,
        CpuMilli(4000),
        MemMib(16 * 1024),
        PlacementPolicy::BestFit,
    )
}

fn two_site_sim(seed: u64, chaos: ChaosConfig) -> lass::core::FederatedSimReport {
    let mut topology = Topology::new();
    topology.add_site("a", small_cluster(1), 0.002);
    topology.add_site("b", small_cluster(2), 0.020);
    let mut sim = FederatedSimulation::new(LassConfig::default(), topology, seed);
    sim.set_chaos(chaos);
    sim.add_function(testbed_setup(20.0, 30.0, 1));
    sim.run(Some(30.0)).expect("runs")
}

proptest! {
    // Every case runs a real federated simulation; keep the count
    // modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation under random fault schedules — brown-outs included:
    /// every arrival is exactly one of completed, failed (lost), timed
    /// out, or still outstanding — and migration is symmetric across
    /// sites. This is the "exactly one fate" invariant: migrated-then-
    /// completed requests count once, in `completed`, and a
    /// `SiteSlowdown` may stretch service times but never loses work.
    #[test]
    fn arrivals_are_conserved_under_random_faults(
        seed in 0u64..500,
        schedule in prop::collection::vec(
            (1.0f64..28.0, 0u8..6, 0u32..2, 1u32..4),
            0..8,
        ),
    ) {
        let events = schedule
            .into_iter()
            .map(|(at, kind, site, count)| {
                let fault = match kind {
                    0 => Fault::SiteDown { site },
                    1 => Fault::SiteUp { site },
                    2 => Fault::PartitionStart { site },
                    3 => Fault::PartitionEnd { site },
                    4 => Fault::ContainerBurst { site, count },
                    // 250/500/750 ‰ brown-outs (count ∈ 1..4).
                    _ => Fault::SiteSlowdown { site, permille: 250 * count },
                };
                (at, fault)
            })
            .collect();
        let chaos = ChaosConfig { events, ..ChaosConfig::default() };
        let rep = two_site_sim(seed, chaos);

        let agg = &rep.aggregate_per_fn[0];
        prop_assert_eq!(
            agg.arrivals,
            agg.completed + agg.lost + agg.timeouts + rep.outstanding,
            "conservation broke"
        );
        let migrated_out: usize = rep.per_site.iter().map(|s| s.migrated).sum();
        let migrated_in: usize = rep.per_site.iter().map(|s| s.migrated_in).sum();
        prop_assert_eq!(migrated_out, migrated_in, "migration is not symmetric");
        // Failures only come from faults: front-door shedding plus
        // per-site dead ends, all bounded by the engine's lost count.
        let failed: usize = rep.per_site.iter().map(|s| s.failed).sum();
        prop_assert_eq!(failed + rep.unroutable, agg.lost);
    }

    /// A site crashed for the rest of the run receives zero deliveries
    /// after the crash: its per-function arrival count freezes at the
    /// crash instant (migrated orphans land only on the survivor).
    #[test]
    fn dead_sites_receive_nothing(
        seed in 0u64..500,
        crash_at in 2.0f64..25.0,
    ) {
        let chaos = ChaosConfig {
            events: vec![(crash_at, Fault::SiteDown { site: 0 })],
            ..ChaosConfig::default()
        };
        let rep = two_site_sim(seed, chaos);
        let dead = &rep.per_site[0];
        prop_assert!((dead.downtime_secs - (30.0 - crash_at)).abs() < 1e-6);
        // Everything the dead site ever saw arrived before the crash;
        // with a 20 req/s workload the pre-crash share is well under the
        // full-run total. The survivor took the rest plus the orphans.
        let dead_arrivals = dead.report.per_fn[&0].arrivals;
        let total = rep.aggregate_per_fn[0].arrivals;
        prop_assert!(dead_arrivals < total, "dead site kept absorbing traffic");
        let survivor = &rep.per_site[1];
        prop_assert_eq!(survivor.migrated_in, dead.migrated);
        prop_assert_eq!(survivor.downtime_secs, 0.0);
        // The dead site's monitor loop died with it: its rate timeline
        // has no points meaningfully past the crash instant.
        let last_tick = dead.report.per_fn[&0]
            .rate_timeline
            .points()
            .last()
            .map_or(0.0, |&(t, _)| t);
        prop_assert!(
            last_tick <= crash_at + 2.0 + 1e-9,
            "monitor tick at {last_tick} after crash at {crash_at}"
        );
    }
}

/// Chaos × routing interaction: under a stochastic MTBF/MTTR storm the
/// failure-aware router measurably cuts the requests that die with a
/// site (`failed`) compared to least-loaded, at a fixed seed.
///
/// Mechanism: least-loaded herds onto a just-recovered site the moment
/// it reports up (it is empty, hence maximally attractive); when that
/// site — or the last healthy peer — crashes again, everything
/// committed there dies. Failure-aware's downtime EWMA keeps the
/// recovering site browned out and re-admits it as a trickle, so far
/// fewer requests are exposed. The ordering is asserted, not exact
/// values; front-door shedding (`unroutable`) is router-independent
/// (all-dark windows) and must match between the two runs.
#[test]
fn failure_aware_routing_cuts_failures_under_chaos_storm() {
    let run = |kind: RouterKind| {
        let mut topology = Topology::new();
        topology.add_site("a", small_cluster(2), 0.002);
        topology.add_site("b", small_cluster(2), 0.008);
        topology.add_site("c", small_cluster(2), 0.015);
        let mut sim = FederatedSimulation::new(LassConfig::default(), topology, 7);
        sim.set_router(kind);
        sim.set_chaos(ChaosConfig {
            site_mtbf_secs: Some(90.0),
            site_mttr_secs: 25.0,
            migration_penalty_secs: 0.005,
            ..ChaosConfig::default()
        });
        sim.add_function(testbed_setup(45.0, 300.0, 2));
        sim.run(Some(300.0)).expect("runs")
    };
    let ll = run(RouterKind::LeastLoaded);
    let fa = run(RouterKind::FailureAware);

    // The storm actually bit, identically often (faults are drawn from
    // chaos streams independent of the router).
    let downtime = |rep: &lass::core::FederatedSimReport| -> f64 {
        rep.per_site.iter().map(|s| s.downtime_secs).sum()
    };
    assert!(downtime(&ll) > 0.0);
    assert_eq!(
        downtime(&ll),
        downtime(&fa),
        "fault schedule must not depend on router"
    );
    assert_eq!(
        ll.unroutable, fa.unroutable,
        "front-door shedding is router-independent"
    );

    let failed = |rep: &lass::core::FederatedSimReport| -> usize {
        rep.per_site.iter().map(|s| s.failed).sum()
    };
    let (ll_failed, fa_failed) = (failed(&ll), failed(&fa));
    assert!(
        ll_failed > 0,
        "seed must produce failures under least-loaded to compare against"
    );
    assert!(
        fa_failed * 2 < ll_failed,
        "failure-aware must cut failed requests: {fa_failed} vs {ll_failed}"
    );
    // A recently-crashed site ends the run with a worse health score
    // than one that stayed up longer — the signal the router acts on.
    assert!(fa.per_site.iter().any(|s| s.flakiness > 0.0));

    // Both runs still conserve every arrival.
    for rep in [&ll, &fa] {
        let agg = &rep.aggregate_per_fn[0];
        assert_eq!(
            agg.arrivals,
            agg.completed + agg.lost + agg.timeouts + rep.outstanding
        );
    }
}

/// Run `lass-sweep` over a chaos grid and check the output table: the
/// grid is complete (one row per cell, in grid order) and rows are
/// deterministic per seed. The binary was previously only smoke-run.
#[test]
fn sweep_grid_is_complete_and_deterministic() {
    let spec = r#"{
        "base": {
            "seed": 1,
            "policy": "lass",
            "topology": {
                "router": "least-loaded",
                "sites": [
                    { "name": "a", "cluster": { "nodes": 1, "cpu_milli": 4000, "mem_mib": 16384 }, "latency_ms": 2 },
                    { "name": "b", "cluster": { "nodes": 1, "cpu_milli": 4000, "mem_mib": 16384 }, "latency_ms": 10 }
                ]
            },
            "functions": [
                {
                    "function": "micro_benchmark:100",
                    "slo_ms": 150,
                    "workload": { "Static": { "rate": 10.0, "duration": 30.0 } },
                    "initial_containers": 1
                }
            ]
        },
        "rate_scales": [1.0, 2.0],
        "chaos": [
            { "name": "baseline" },
            { "name": "crash-a", "events": [ { "at": 10.0, "kind": "site-down", "site": "a" } ] }
        ],
        "seeds": [5, 6]
    }"#;
    let dir = std::env::temp_dir();
    let spec_path = dir.join("lass-chaos-sweep-spec.json");
    std::fs::write(&spec_path, spec).expect("write spec");

    let run = |out: &std::path::Path| {
        let status = std::process::Command::new(env!("CARGO_BIN_EXE_lass-sweep"))
            .arg(&spec_path)
            .arg("--out")
            .arg(out)
            .status()
            .expect("lass-sweep runs");
        assert!(status.success(), "lass-sweep exited with {status}");
        std::fs::read_to_string(out).expect("table written")
    };
    let out_a = dir.join("lass-chaos-sweep-a.json");
    let out_b = dir.join("lass-chaos-sweep-b.json");
    let (table_a, table_b) = (run(&out_a), run(&out_b));
    assert_eq!(
        table_a, table_b,
        "sweep rows must be deterministic per seed"
    );

    let rows: serde_json::Value = serde_json::from_str(&table_a).expect("valid JSON table");
    let rows = rows.as_array().expect("array of rows");
    // 2 rate scales × 1 policy × 1 router(base) × 2 chaos × 2 seeds.
    assert_eq!(rows.len(), 8, "grid is incomplete");

    let num = |row: &serde_json::Value, key: &str| -> f64 {
        row.as_object()
            .expect("row object")
            .get(key)
            .unwrap_or_else(|| panic!("row missing {key}"))
            .as_f64()
            .unwrap_or_else(|| panic!("{key} is not a number"))
    };
    let mut seen = std::collections::BTreeSet::new();
    for row in rows {
        let scale = num(row, "rate_scale");
        let chaos = row
            .as_object()
            .unwrap()
            .get("chaos")
            .and_then(|v| v.as_str())
            .expect("chaos label")
            .to_owned();
        let seed = num(row, "seed") as u64;
        assert!(
            seen.insert((scale.to_bits(), chaos.clone(), seed)),
            "duplicate grid cell"
        );
        let arrivals = num(row, "arrivals");
        assert!(arrivals > 100.0, "cell barely ran: {arrivals} arrivals");
        // The crash profile migrates or fails work; the baseline must not.
        let (migrated, failed) = (num(row, "migrated"), num(row, "failed"));
        if chaos == "baseline" {
            assert_eq!((migrated, failed), (0.0, 0.0), "baseline rows saw faults");
        }
    }
    for (scale, chaos, seed) in [
        (1.0f64, "baseline", 5u64),
        (2.0, "crash-a", 6),
        (1.0, "crash-a", 5),
    ] {
        assert!(
            seen.contains(&(scale.to_bits(), chaos.to_owned(), seed)),
            "missing grid cell ({scale}, {chaos}, {seed})"
        );
    }
}
