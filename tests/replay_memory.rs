//! Memory-regression guard for the million-function replay stack: the
//! streaming statistics path must hold a *bounded* footprint per
//! function — O(1) P² markers, never retained samples — and its
//! steady-state record path must be allocation-free.
//!
//! The probe is a counting `#[global_allocator]` (integration tests
//! compile as standalone binaries, so the allocator swap is scoped to
//! this file). It is deliberately coarse: we assert on *deltas* around
//! the measured region, not absolute numbers, so allocator internals
//! and test-harness noise cannot trip it.

use lass_simcore::SampleStats;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static BYTES: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size(), Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

fn bytes() -> usize {
    BYTES.load(Ordering::Relaxed)
}

/// 10⁵ functions' worth of streaming stats: warm them past the lazy
/// quantile-estimator boot, then assert the steady-state record path
/// performs zero allocation and retains zero samples.
#[test]
fn streaming_stats_footprint_is_bounded_at_100k_functions() {
    const FUNCTIONS: usize = 100_000;
    let mut stats: Vec<SampleStats> = (0..FUNCTIONS).map(|_| SampleStats::streaming()).collect();

    // Warm-up: the first few records may allocate (each stat boots its
    // P² marker block lazily) — that is the *bounded* footprint.
    let warm_bytes_before = bytes();
    for (i, s) in stats.iter_mut().enumerate() {
        for k in 0..10u32 {
            s.record(f64::from(k) + i as f64 * 1e-6);
        }
    }
    let warm_bytes = bytes() - warm_bytes_before;
    // Bounded footprint: O(1) per function. 1 KiB each is ~10× the real
    // marker-block size — a retained-sample representation (8 B/sample
    // growing forever) blows through this within the warm-up alone.
    assert!(
        warm_bytes < FUNCTIONS * 1024,
        "streaming warm-up allocated {warm_bytes} bytes for {FUNCTIONS} stats"
    );

    // Steady state: recording into warm streaming stats must not touch
    // the allocator at all.
    let (a0, b0) = (allocs(), bytes());
    for (i, s) in stats.iter_mut().enumerate() {
        for k in 0..20u32 {
            s.record(f64::from(k) * 0.5 + (i % 97) as f64);
        }
    }
    let (da, db) = (allocs() - a0, bytes() - b0);
    assert_eq!(
        da, 0,
        "steady-state streaming record performed {da} allocations ({db} bytes)"
    );

    // And nothing is retained: the whole point of the streaming path.
    for s in &stats {
        assert_eq!(s.retained(), 0);
        assert_eq!(s.count(), 30);
    }
    // Estimates stay sane after 3M total records.
    let p95 = stats[0].percentile(0.95).unwrap();
    assert!(p95.is_finite() && p95 >= 0.0);
}

/// The exact (golden-pinned) representation *does* retain samples —
/// the probe must see the difference, or it is not measuring anything.
#[test]
fn exact_stats_retain_and_allocate() {
    let mut s = SampleStats::new();
    let (a0, _) = (allocs(), bytes());
    for k in 0..10_000u32 {
        s.record(f64::from(k));
    }
    assert_eq!(s.retained(), 10_000);
    assert!(
        allocs() - a0 > 0,
        "exact stats grew a 10k-sample vec without allocating?"
    );
}
