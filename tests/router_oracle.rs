//! Queueing-oracle differential tests: the simulator and the
//! closed-form mathematics check each other, as in the paper's
//! validation section.
//!
//! Three layers, each pinning one link of the model-driven routing
//! chain:
//!
//! * **Simulator vs closed form** — a fixed-seed M/M/c simulation
//!   (Poisson arrivals from the engine's arrival streams, exponential
//!   service from its service streams, `c` FCFS servers) must measure
//!   the waiting times the `lass-queueing` M/M/c formulas predict, at
//!   moderate (ρ = 0.5) and high (ρ = 0.8) utilization.
//! * **Telemetry vs ground truth** — a [`WaitPredictor`] fed the same
//!   stochastic streams must recover λ, μ, and through them the
//!   closed-form waits.
//! * **Router vs analytical optimum** — the `slo-aware` router routing
//!   over two M/M/c sites must realize the per-site traffic split that
//!   the closed forms say is optimal: the score-equalizing equilibrium
//!   in pure minimum-predicted-response mode, and total edge-affinity
//!   when a generous SLO makes the near site sufficient.

use lass::queueing::{MmcQueue, PredictorConfig, WaitPredictor};
use lass::simcore::{
    run_simulation, EngineConfig, EngineOutcome, FedFunction, Federation, FunctionEntry, PolicyCtx,
    ReqId, RouterConfig, RouterKind, SchedulerPolicy, SimDuration, SimRng, SimTime, SiteMeta,
    StaticPoisson,
};
use std::collections::VecDeque;

/// A literal M/M/c/FCFS station: `c` identical servers, exponential
/// service at rate `mu` drawn from the engine's deterministic service
/// stream, FCFS queue. The simplest policy whose waiting times have an
/// exact closed form.
struct McServer {
    servers: u32,
    mu: f64,
    busy: u32,
    queue: VecDeque<ReqId>,
}

impl McServer {
    fn new(servers: u32, mu: f64) -> Self {
        Self {
            servers,
            mu,
            busy: 0,
            queue: VecDeque::new(),
        }
    }

    fn begin_service(
        &mut self,
        ctx: &mut impl PolicyCtx<McEv>,
        rid: ReqId,
        fn_idx: u32,
        now: SimTime,
    ) {
        self.busy += 1;
        let service = ctx.service_rng(fn_idx).exp(self.mu);
        ctx.schedule(
            now + SimDuration::from_secs_f64(service),
            McEv::Done(rid, now),
        );
    }
}

enum McEv {
    /// `(request, service start)`.
    Done(ReqId, SimTime),
}

impl SchedulerPolicy for McServer {
    type Event = McEv;
    type Report = EngineOutcome;

    fn on_start(&mut self, _ctx: &mut impl PolicyCtx<McEv>) {}

    fn on_arrival(
        &mut self,
        ctx: &mut impl PolicyCtx<McEv>,
        rid: ReqId,
        fn_idx: u32,
        now: SimTime,
    ) {
        if self.busy < self.servers {
            self.begin_service(ctx, rid, fn_idx, now);
        } else {
            self.queue.push_back(rid);
        }
    }

    fn on_event(&mut self, ctx: &mut impl PolicyCtx<McEv>, ev: McEv, now: SimTime) {
        let McEv::Done(rid, started) = ev;
        if ctx.complete(rid, started, now).is_none() {
            // Withheld by a wrapper (not exercised here); the server
            // still frees up.
        }
        self.busy = self.busy.saturating_sub(1);
        if let Some(next) = self.queue.pop_front() {
            let fn_idx = ctx.request_info(next).map_or(0, |(f, _)| f);
            self.begin_service(ctx, next, fn_idx, now);
        }
    }

    fn finish(self, outcome: EngineOutcome) -> EngineOutcome {
        outcome
    }
}

impl lass::simcore::ContainerChaos for McServer {}

/// Run one single-station M/M/c simulation and return its engine
/// outcome.
fn run_mmc(seed: u64, lambda: f64, mu: f64, servers: u32, duration: f64) -> EngineOutcome {
    run_simulation(
        EngineConfig {
            seed,
            rng_label_prefix: String::new(),
            duration_secs: duration,
            drain_secs: 120.0,
            stream_stats: false,
            parallel_sites: None,
        },
        vec![FunctionEntry {
            name: "probe".into(),
            slo_deadline: 1.0,
            process: Box::new(StaticPoisson::until(
                lambda,
                SimTime::from_secs_f64(duration),
            )),
        }],
        McServer::new(servers, mu),
    )
}

/// The headline acceptance check: at ρ ∈ {0.5, 0.8} the simulated mean
/// wait lands within 5% of the M/M/c closed form, and the simulated
/// p95 within 10% of the inverted exact CDF.
#[test]
fn single_site_waits_match_mmc_closed_form() {
    // (lambda, mu, c, duration, seed): rho = lambda / (c mu).
    for &(lambda, mu, c, duration, seed) in &[
        (10.0, 10.0, 2, 3000.0, 7),   // rho = 0.5
        (16.0, 10.0, 2, 20000.0, 11), // rho = 0.8 (longer: waits correlate)
    ] {
        let oracle = MmcQueue::new(lambda, mu, c).unwrap();
        let out = run_mmc(seed, lambda, mu, c, duration);
        let mut f = out.per_fn.into_iter().next().unwrap();
        assert!(
            f.completed as f64 > lambda * duration * 0.98,
            "run too short: {} completions",
            f.completed
        );

        let measured_mean = f.wait.mean().unwrap();
        let predicted_mean = oracle.mean_wait();
        let rel = (measured_mean - predicted_mean).abs() / predicted_mean;
        assert!(
            rel < 0.05,
            "rho={}: measured mean wait {measured_mean:.5}s vs closed form \
             {predicted_mean:.5}s ({:.1}% off)",
            oracle.utilization(),
            rel * 100.0
        );

        let measured_p95 = f.wait.percentile(0.95).unwrap();
        let predicted_p95 = oracle.wait_percentile(0.95);
        let rel = (measured_p95 - predicted_p95).abs() / predicted_p95.max(1e-9);
        assert!(
            rel < 0.10,
            "rho={}: measured p95 wait {measured_p95:.5}s vs closed form \
             {predicted_p95:.5}s ({:.1}% off)",
            oracle.utilization(),
            rel * 100.0
        );

        // The empirical waiting-time CDF agrees with the exact one at a
        // few probe points (two-sided check on P(W <= t)).
        for &p in &[0.5, 0.9] {
            let t = oracle.wait_percentile(p);
            if t > 0.0 {
                let measured_p = f.wait.samples().iter().filter(|&&w| w <= t).count() as f64
                    / f.wait.count() as f64;
                assert!(
                    (measured_p - p).abs() < 0.03,
                    "CDF mismatch at p={p}: measured {measured_p}"
                );
            }
        }
    }
}

/// The telemetry layer recovers the model: a predictor fed Poisson
/// arrivals and exponential service times from deterministic streams
/// reconstructs λ and μ, and therefore the closed-form waits, within a
/// few percent.
#[test]
fn predictor_recovers_model_from_stochastic_telemetry() {
    let (lambda, mu) = (12.0, 8.0);
    let mut p = WaitPredictor::new(PredictorConfig {
        tick_secs: 1.0,
        lambda_alpha: 0.05,
        service_alpha: 0.02,
    });
    let mut arr_rng = SimRng::from_seed_label(3, "oracle:arrivals");
    let mut svc_rng = SimRng::from_seed_label(3, "oracle:service");
    let mut t = 0.0;
    while t < 600.0 {
        t += arr_rng.exp(lambda);
        p.on_arrival(t);
        p.on_service(svc_rng.exp(mu));
    }
    let f = p.forecast(600.0, 3);
    assert!(
        (f.lambda - lambda).abs() / lambda < 0.10,
        "lambda estimate {} vs {}",
        f.lambda,
        lambda
    );
    assert!(
        (f.mu - mu).abs() / mu < 0.10,
        "mu estimate {} vs {}",
        f.mu,
        mu
    );
    // The forecast waits track the ground-truth model.
    let truth = MmcQueue::new(lambda, mu, 3).unwrap();
    let rel = (f.mean_wait() - truth.mean_wait()).abs() / truth.mean_wait();
    assert!(
        rel < 0.35,
        "forecast mean wait {} vs truth {} ({:.0}% off)",
        f.mean_wait(),
        truth.mean_wait(),
        rel * 100.0
    );
}

/// Two homogeneous M/M/c sites behind the slo-aware router.
fn run_split(
    seed: u64,
    router_cfg: &RouterConfig,
    lambda: f64,
    latencies: (f64, f64),
    duration: f64,
) -> lass::simcore::FederatedReport<EngineOutcome> {
    let (mu, servers) = (10.0, 2u32);
    let functions = vec![FedFunction {
        name: "probe".into(),
        slo_deadline: 1.0,
        demand: [0.0; 3],
    }];
    let sites = vec![
        (
            SiteMeta {
                name: "near".into(),
                latency: SimDuration::from_secs_f64(latencies.0),
                capacity_hint: f64::from(servers),
            },
            McServer::new(servers, mu),
        ),
        (
            SiteMeta {
                name: "far".into(),
                latency: SimDuration::from_secs_f64(latencies.1),
                capacity_hint: f64::from(servers),
            },
            McServer::new(servers, mu),
        ),
    ];
    let mut fed = Federation::new(
        sites,
        RouterKind::SloAware.build_with(router_cfg),
        &functions,
    );
    fed.set_router_config(router_cfg);
    run_simulation(
        EngineConfig {
            seed,
            rng_label_prefix: String::new(),
            duration_secs: duration,
            drain_secs: 120.0,
            stream_stats: false,
            parallel_sites: None,
        },
        vec![FunctionEntry {
            name: "probe".into(),
            slo_deadline: 1.0,
            process: Box::new(StaticPoisson::until(
                lambda,
                SimTime::from_secs_f64(duration),
            )),
        }],
        fed,
    )
}

/// The analytical optimum for minimum-predicted-response routing over
/// two M/M/c sites: the split equalizing `latency_i + Wp(λ_i)` (the
/// router's score), found by bisection on the closed forms.
fn equilibrium_share(
    lambda: f64,
    mu: f64,
    servers: u32,
    percentile: f64,
    latencies: (f64, f64),
) -> f64 {
    let wp = |l: f64| -> f64 {
        if l <= 0.0 {
            return 0.0;
        }
        MmcQueue::new(l, mu, servers)
            .unwrap()
            .wait_percentile(percentile)
    };
    // score_near(x) - score_far(x) is increasing in x (near's share).
    let g = |x: f64| latencies.0 + wp(x * lambda) - (latencies.1 + wp((1.0 - x) * lambda));
    // Interior equilibrium: each site alone would be unstable, so both
    // carry traffic and the equalizer exists inside the stability band.
    let cap = f64::from(servers) * mu;
    let (mut lo, mut hi) = ((lambda - cap) / lambda + 1e-6, cap / lambda - 1e-6);
    assert!(g(lo) < 0.0 && g(hi) > 0.0, "no interior equilibrium");
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if g(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// The acceptance check for the router itself: in pure
/// minimum-predicted-response mode (`slo_ms: 0`) the realized per-site
/// traffic split converges to the score-equalizing split the closed
/// forms predict.
#[test]
fn slo_aware_split_matches_analytic_equilibrium() {
    let lambda = 24.0; // each 2-server site alone (cap 20/s) is unstable
    let latencies = (0.005, 0.025);
    let cfg = RouterConfig {
        slo_ms: 0.0,
        percentile: 0.95,
        hysteresis_ms: 1.0,
        lambda_alpha: 0.3,
        service_alpha: 0.05,
        ..RouterConfig::default()
    };
    let rep = run_split(42, &cfg, lambda, latencies, 2000.0);
    let routed: usize = rep.per_site.iter().map(|s| s.routed).sum();
    assert_eq!(routed, rep.aggregate_per_fn[0].arrivals);
    let measured = rep.per_site[0].routed as f64 / routed as f64;
    let optimal = equilibrium_share(lambda, 10.0, 2, 0.95, latencies);
    assert!(
        (0.5..0.95).contains(&optimal),
        "oracle equilibrium {optimal} out of expected band"
    );
    assert!(
        (measured - optimal).abs() < 0.05,
        "realized near-site share {measured:.3} vs analytic optimum {optimal:.3}"
    );
    // Both sites must be meaningfully used (no degenerate herd).
    assert!(rep.per_site[1].routed > routed / 10);
}

/// With a generous SLO and a load the near site can hold alone, the
/// satisficing tier keeps (almost) everything on the cheap hop — the
/// closed forms say the near site meets the SLO at full load, so the
/// analytically optimal split is "all near".
#[test]
fn slo_aware_keeps_traffic_near_while_slo_holds() {
    let lambda = 12.0; // rho = 0.6 on the near site alone
    let latencies = (0.005, 0.025);
    // Closed form: near meets the budget even carrying everything, with
    // enough headroom that λ̂ estimation noise cannot push it over.
    let q = MmcQueue::new(lambda, 10.0, 2).unwrap();
    let slo = 0.5;
    assert!(latencies.0 + q.wait_percentile(0.95) < slo * 0.6);
    let cfg = RouterConfig {
        slo_ms: slo * 1e3,
        percentile: 0.95,
        lambda_alpha: 0.1,
        service_alpha: 0.02,
        ..RouterConfig::default()
    };
    let rep = run_split(43, &cfg, lambda, latencies, 1000.0);
    let routed: usize = rep.per_site.iter().map(|s| s.routed).sum();
    let near_share = rep.per_site[0].routed as f64 / routed as f64;
    assert!(
        near_share > 0.92,
        "near share {near_share}: SLO-satisficing tier must hold the cheap hop"
    );
}

/// Differential determinism: the model-driven federated run is exactly
/// reproducible under its seed (telemetry, forecasts, hysteresis state
/// and all).
#[test]
fn model_driven_routing_is_deterministic() {
    let cfg = RouterConfig {
        slo_ms: 0.0,
        ..RouterConfig::default()
    };
    let a = run_split(9, &cfg, 24.0, (0.005, 0.025), 300.0);
    let b = run_split(9, &cfg, 24.0, (0.005, 0.025), 300.0);
    assert_eq!(a.per_site[0].routed, b.per_site[0].routed);
    assert_eq!(a.per_site[1].routed, b.per_site[1].routed);
    assert_eq!(
        serde_json::to_string(&a.aggregate_per_fn).unwrap(),
        serde_json::to_string(&b.aggregate_per_fn).unwrap()
    );
}
