//! Hedged-request integration tests.
//!
//! Three families:
//!
//! * **First-response-wins accounting** — with immediate hedging every
//!   resolved race dispatches clones and cancels exactly the losers;
//!   wasted work (a cancel landing after service start) is bounded by
//!   the cancellations it is a subset of.
//! * **Inert-hedge transparency** — an armed hedge whose deferred
//!   trigger lies beyond the horizon reproduces the unhedged run
//!   byte-for-byte, the library-level twin of the CI scenario diff.
//! * **Conservation under chaos** (property test) — the "exactly one
//!   fate" identity holds with hedging enabled under random site
//!   crash/partition/burst storms: clones never inflate the logical
//!   arrival count, and every dispatched clone either wins, is
//!   cancelled, or dies with its site before the race resolves.

use lass::cluster::{Cluster, CpuMilli, MemMib, PlacementPolicy, Topology};
use lass::core::{FederatedSimulation, FunctionSetup, LassConfig};
use lass::functions::{micro_benchmark, WorkloadSpec};
use lass::simcore::{ChaosConfig, Fault, HedgeConfig, HedgeTrigger, RouterKind};
use proptest::prelude::*;

fn small_cluster(nodes: u32) -> Cluster {
    Cluster::homogeneous(
        nodes,
        CpuMilli(4000),
        MemMib(16 * 1024),
        PlacementPolicy::BestFit,
    )
}

fn testbed_setup(rate: f64, duration: f64, initial: u32) -> FunctionSetup {
    let mut setup = FunctionSetup::new(
        micro_benchmark(0.1),
        0.1,
        WorkloadSpec::Static { rate, duration },
    );
    setup.initial_containers = initial;
    setup
}

fn three_site_sim(
    seed: u64,
    hedge: Option<HedgeConfig>,
    chaos: Option<ChaosConfig>,
) -> lass::core::FederatedSimReport {
    let mut topology = Topology::new();
    topology.add_site("a", small_cluster(2), 0.002);
    topology.add_site("b", small_cluster(2), 0.010);
    topology.add_site("c", small_cluster(2), 0.030);
    let mut sim = FederatedSimulation::new(LassConfig::default(), topology, seed);
    sim.set_router(RouterKind::LeastLoaded);
    sim.set_hedge(hedge);
    if let Some(c) = chaos {
        sim.set_chaos(c);
    }
    sim.add_function(testbed_setup(25.0, 30.0, 1));
    sim.run(Some(30.0)).expect("runs")
}

/// Immediate hedging on a healthy topology: every race resolves inside
/// the drain, so the clone ledger closes — one cancellation per clone
/// (the winner is whichever copy answers first), wasted work only ever
/// a subset of those cancellations, and the logical ledger (arrivals,
/// completions) stays clone-free.
#[test]
fn first_response_wins_closes_the_clone_ledger() {
    let hedged = three_site_sim(
        11,
        Some(HedgeConfig {
            trigger: HedgeTrigger::Immediate,
            max_clones: 1,
            retry_after_ms: 0.0,
            waste_budget: 0.0,
        }),
        None,
    );
    let agg = &hedged.aggregate_per_fn[0];
    assert!(agg.hedged > 100, "hedging never fired: {}", agg.hedged);
    assert_eq!(
        agg.cancelled, agg.hedged,
        "every resolved race cancels exactly its losers"
    );
    assert_eq!(
        agg.arrivals,
        agg.completed + agg.lost + agg.timeouts + hedged.outstanding,
        "clones leaked into the logical ledger"
    );
    let wasted: usize = hedged.per_site.iter().map(|s| s.wasted_work).sum();
    assert!(
        wasted <= agg.cancelled,
        "wasted work ({wasted}) exceeds cancellations ({})",
        agg.cancelled
    );

    // The unhedged twin dispatches nothing and reports all-zero tallies.
    let plain = three_site_sim(11, None, None);
    let pagg = &plain.aggregate_per_fn[0];
    assert_eq!((pagg.hedged, pagg.cancelled), (0, 0));
    assert_eq!(pagg.arrivals, agg.arrivals, "workload must match");
}

/// A deferred trigger only clones requests the primary has not answered
/// in time: with the deferral comfortably above the typical response,
/// far fewer clones fire than under immediate hedging.
#[test]
fn deferred_trigger_hedges_only_the_slow_tail() {
    let immediate = three_site_sim(
        11,
        Some(HedgeConfig {
            trigger: HedgeTrigger::Immediate,
            max_clones: 1,
            retry_after_ms: 0.0,
            waste_budget: 0.0,
        }),
        None,
    );
    let deferred = three_site_sim(
        11,
        Some(HedgeConfig {
            trigger: HedgeTrigger::DeferredMs(400.0),
            max_clones: 1,
            retry_after_ms: 0.0,
            waste_budget: 0.0,
        }),
        None,
    );
    let (i, d) = (
        &immediate.aggregate_per_fn[0],
        &deferred.aggregate_per_fn[0],
    );
    assert!(
        d.hedged * 4 < i.hedged,
        "a 400 ms deferral should spare most requests: {} vs {}",
        d.hedged,
        i.hedged
    );
    assert_eq!(
        d.arrivals,
        d.completed + d.lost + d.timeouts + deferred.outstanding
    );
}

/// An armed hedge that can never fire inside the horizon must reproduce
/// the unhedged run byte-for-byte: arming the machinery alone may not
/// perturb RNG streams, the calendar, or the report.
#[test]
fn inert_hedge_reproduces_unhedged_run_byte_for_byte() {
    let unhedged = three_site_sim(13, None, None);
    let inert = three_site_sim(
        13,
        Some(HedgeConfig {
            trigger: HedgeTrigger::DeferredMs(10_000_000.0),
            max_clones: 1,
            retry_after_ms: 0.0,
            waste_budget: 0.0,
        }),
        None,
    );
    assert_eq!(
        serde_json::to_string(&unhedged).unwrap(),
        serde_json::to_string(&inert).unwrap(),
        "an inert hedge drifted from the unhedged run"
    );
}

/// Speculative retry supersedes the trigger: when `retry_after_ms` is
/// set, the configured trigger is irrelevant — two configs differing
/// only in trigger produce byte-identical runs — and the retries both
/// fire and keep the ledger closed.
#[test]
fn speculative_retry_supersedes_trigger_and_conserves() {
    let retry = |trigger: HedgeTrigger| {
        three_site_sim(
            11,
            Some(HedgeConfig {
                trigger,
                max_clones: 1,
                retry_after_ms: 40.0,
                waste_budget: 0.0,
            }),
            None,
        )
    };
    let a = retry(HedgeTrigger::Immediate);
    let b = retry(HedgeTrigger::DeferredMs(400.0));
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "retry_after_ms must supersede the trigger"
    );
    let agg = &a.aggregate_per_fn[0];
    assert!(agg.hedged > 0, "40 ms retries never fired");
    assert!(
        agg.hedged < agg.arrivals,
        "a 40 ms deferral must spare the fast majority"
    );
    assert_eq!(
        agg.arrivals,
        agg.completed + agg.lost + agg.timeouts + a.outstanding
    );
}

/// The waste budget is a real admission bound: a 10 % budget admits
/// strictly fewer clones than the unbudgeted twin, still hedges at all,
/// and the run-long waste ratio honors `wasted < budget × finished`.
#[test]
fn waste_budget_caps_cloning() {
    let run = |waste_budget: f64| {
        three_site_sim(
            11,
            Some(HedgeConfig {
                trigger: HedgeTrigger::Immediate,
                max_clones: 1,
                retry_after_ms: 0.0,
                waste_budget,
            }),
            None,
        )
    };
    let open = run(0.0);
    let capped = run(0.1);
    let (o, c) = (&open.aggregate_per_fn[0], &capped.aggregate_per_fn[0]);
    assert!(c.hedged > 0, "the budget must admit some clones");
    assert!(
        c.hedged * 2 < o.hedged,
        "a 10 % budget barely bit: {} vs {}",
        c.hedged,
        o.hedged
    );
    // The admission predicate (wasted < budget × (completed + wasted))
    // held at every admission, so the final ledger can exceed the line
    // by at most the clones admitted right at it.
    let wasted: usize = capped.per_site.iter().map(|s| s.wasted_work).sum();
    assert!(
        (wasted as f64) <= 0.1 * ((c.completed + wasted) as f64) + c.hedged as f64 * 0.01 + 1.0,
        "waste ratio blown: {wasted} wasted vs {} completed",
        c.completed
    );
    assert_eq!(
        c.arrivals,
        c.completed + c.lost + c.timeouts + capped.outstanding
    );
}

/// Regression pin on the committed sweep artifact: the 0.8×-load rows
/// of `results/sweep-hedging-table.json` carry the speculative-retry
/// and waste-budget variants, and the budgeted rows admit strictly
/// fewer clones than their unbudgeted twins at every seed.
#[test]
fn sweep_table_pins_retry_and_waste_rows_at_high_load() {
    let path = format!(
        "{}/results/sweep-hedging-table.json",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&path).expect("committed sweep table");
    let rows: serde_json::Value = serde_json::from_str(&text).expect("valid JSON table");
    let rows = rows.as_array().expect("array of rows");

    let cell = |hedge: &str, seed: u64| -> &serde_json::Map {
        rows.iter()
            .map(|r| r.as_object().expect("row object"))
            .find(|r| {
                r["hedge"].as_str() == Some(hedge)
                    && r["seed"].as_f64() == Some(seed as f64)
                    && r["rate_scale"].as_f64() == Some(0.8)
            })
            .unwrap_or_else(|| panic!("missing 0.8×-load row ({hedge}, seed {seed})"))
    };
    for seed in [7u64, 8, 9] {
        let retry = cell("retry-40ms x1", seed);
        assert!(
            retry["hedged"].as_f64().unwrap() > 0.0,
            "retry row never hedged (seed {seed})"
        );
        let open = cell("immediate x1", seed);
        let capped = cell("immediate x1 w0.1", seed);
        let (oh, ch) = (
            open["hedged"].as_f64().unwrap(),
            capped["hedged"].as_f64().unwrap(),
        );
        assert!(ch > 0.0, "budgeted row never hedged (seed {seed})");
        assert!(
            ch < oh,
            "waste budget did not bite at seed {seed}: {ch} vs {oh}"
        );
    }
}

proptest! {
    // Every case runs a real federated simulation; keep the count
    // modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation under a chaos storm with hedging enabled: the
    /// logical ledger stays clone-free (arrivals = completed + lost +
    /// timeouts + outstanding), cancellations never exceed dispatched
    /// clones (the shortfall is clones that died with their site or
    /// were still racing at the horizon), wasted work stays within the
    /// cancellations it is a subset of, and migration stays symmetric.
    #[test]
    fn hedged_arrivals_are_conserved_under_random_faults(
        seed in 0u64..500,
        max_clones in 1u32..3,
        trigger_pick in 0u8..3,
        schedule in prop::collection::vec(
            (1.0f64..28.0, 0u8..5, 0u32..3, 1u32..4),
            0..8,
        ),
    ) {
        let trigger = match trigger_pick {
            0 => HedgeTrigger::Immediate,
            1 => HedgeTrigger::DeferredMs(25.0),
            _ => HedgeTrigger::PredictedP95OverSlo,
        };
        let events = schedule
            .into_iter()
            .map(|(at, kind, site, count)| {
                let fault = match kind {
                    0 => Fault::SiteDown { site },
                    1 => Fault::SiteUp { site },
                    2 => Fault::PartitionStart { site },
                    3 => Fault::PartitionEnd { site },
                    _ => Fault::ContainerBurst { site, count },
                };
                (at, fault)
            })
            .collect();
        let chaos = ChaosConfig { events, ..ChaosConfig::default() };
        let rep = three_site_sim(
            seed,
            Some(HedgeConfig { trigger, max_clones, retry_after_ms: 0.0, waste_budget: 0.0 }),
            Some(chaos),
        );

        let agg = &rep.aggregate_per_fn[0];
        prop_assert_eq!(
            agg.arrivals,
            agg.completed + agg.lost + agg.timeouts + rep.outstanding,
            "conservation broke with hedging on"
        );
        prop_assert!(
            agg.cancelled <= agg.hedged,
            "more cancellations ({}) than clones ({})",
            agg.cancelled,
            agg.hedged
        );
        let wasted: usize = rep.per_site.iter().map(|s| s.wasted_work).sum();
        prop_assert!(wasted <= agg.cancelled);
        let migrated_out: usize = rep.per_site.iter().map(|s| s.migrated).sum();
        let migrated_in: usize = rep.per_site.iter().map(|s| s.migrated_in).sum();
        prop_assert_eq!(migrated_out, migrated_in, "migration is not symmetric");
    }
}
