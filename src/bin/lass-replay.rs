//! `lass-replay` — replay an hour-scale trace for 10⁴–10⁶ distinct
//! functions through the federated engine and report wall-clock
//! throughput.
//!
//! By default the workload is synthesized: Zipf-popularity functions
//! over a shared pool of Azure-style temporal shapes. Pass `--csv` to
//! replay rows of an Azure Functions 2019 invocations file instead.
//!
//! ```sh
//! cargo run --release --bin lass-replay -- --functions 100000 --minutes 60
//! cargo run --release --bin lass-replay -- --csv trace.csv --window 660 --minutes 60
//! ```
//!
//! The summary prints as pretty JSON on stdout (`--out` also writes it
//! to a file); `sim_req_per_wall_min` is the headline throughput.

use lass::replay::{run_replay, ReplayConfig};
use lass_simcore::{HedgeConfig, HedgeTrigger, RouterKind};

fn usage() -> ! {
    eprintln!(
        "usage: lass-replay [--functions N] [--minutes M] [--seed S] [--zipf EXP] \
         [--rps TOTAL] [--sites K] [--router NAME] [--utilization U] [--slo SECS] \
         [--csv PATH] [--window MINUTE] [--parallel THREADS] [--site-latency-ms MS] \
         [--hedge immediate|deferred:MS|p95] [--hedge-clones N] [--out FILE]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(v) = value else {
        eprintln!("error: {flag} needs a value");
        usage();
    };
    v.parse().unwrap_or_else(|_| {
        eprintln!("error: bad value for {flag}: {v}");
        usage();
    })
}

fn main() {
    let mut cfg = ReplayConfig::default();
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--functions" => cfg.functions = parse(&arg, args.next()),
            "--minutes" => cfg.minutes = parse(&arg, args.next()),
            "--seed" => cfg.seed = parse(&arg, args.next()),
            "--zipf" => cfg.zipf_exponent = parse(&arg, args.next()),
            "--rps" => cfg.total_rps = parse(&arg, args.next()),
            "--sites" => cfg.sites = parse(&arg, args.next()),
            "--utilization" => cfg.utilization = parse(&arg, args.next()),
            "--slo" => cfg.slo_deadline = parse(&arg, args.next()),
            "--window" => cfg.window_start = parse(&arg, args.next()),
            "--csv" => cfg.csv = Some(parse(&arg, args.next())),
            "--parallel" => cfg.parallel = Some(parse(&arg, args.next())),
            "--site-latency-ms" => cfg.site_latency_ms = Some(parse(&arg, args.next())),
            "--hedge" => {
                let spec: String = parse(&arg, args.next());
                let trigger = match spec.as_str() {
                    "immediate" => HedgeTrigger::Immediate,
                    "p95" | "predicted-p95-over-slo" => HedgeTrigger::PredictedP95OverSlo,
                    other => match other.strip_prefix("deferred:") {
                        Some(ms) => HedgeTrigger::DeferredMs(ms.parse().unwrap_or_else(|_| {
                            eprintln!("error: bad deferred hedge delay {ms:?}");
                            usage();
                        })),
                        None => {
                            eprintln!("error: unknown hedge trigger {other:?}");
                            usage();
                        }
                    },
                };
                cfg.hedge.get_or_insert_with(HedgeConfig::default).trigger = trigger;
            }
            "--hedge-clones" => {
                cfg.hedge
                    .get_or_insert_with(HedgeConfig::default)
                    .max_clones = parse(&arg, args.next());
            }
            "--out" => out = Some(parse(&arg, args.next())),
            "--router" => {
                let name: String = parse(&arg, args.next());
                cfg.router = RouterKind::parse(&name).unwrap_or_else(|| {
                    eprintln!("error: unknown router {name:?}");
                    usage();
                });
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag {other:?}");
                usage();
            }
        }
    }

    let summary = run_replay(&cfg).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let json = serde_json::to_string_pretty(&summary).expect("serializable");
    println!("{json}");
    if let Some(p) = out {
        std::fs::write(&p, &json).unwrap_or_else(|e| {
            eprintln!("error: writing {p}: {e}");
            std::process::exit(1);
        });
        eprintln!("(wrote {p})");
    }
    if !summary.conserved {
        eprintln!("error: request conservation violated");
        std::process::exit(1);
    }
}
