//! `lass-sim` — run a declarative JSON scenario through the LaSS
//! simulator and print the per-function report.
//!
//! ```sh
//! cargo run --bin lass-sim -- scenarios/demo.json [--json out.json]
//! ```

use lass::scenario::Scenario;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: lass-sim <scenario.json> [--json <report.json>]");
        std::process::exit(2);
    };
    let json_out = match (args.next().as_deref(), args.next()) {
        (Some("--json"), Some(p)) => Some(p),
        (None, _) => None,
        _ => {
            eprintln!("usage: lass-sim <scenario.json> [--json <report.json>]");
            std::process::exit(2);
        }
    };

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("error: reading {path}: {e}");
        std::process::exit(1);
    });
    let scenario = Scenario::from_json(&text).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let mut report = scenario.run().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });

    println!(
        "{:>4} {:>18} {:>9} {:>9} {:>7} {:>10} {:>10} {:>8}",
        "fn", "name", "arrivals", "done", "rerun", "p95W(ms)", "p99W(ms)", "attain"
    );
    for (id, f) in report.per_fn.iter_mut() {
        println!(
            "{:>4} {:>18} {:>9} {:>9} {:>7} {:>10.1} {:>10.1} {:>8.3}",
            id,
            f.name,
            f.arrivals,
            f.completed,
            f.reruns,
            f.wait.percentile(0.95).unwrap_or(0.0) * 1e3,
            f.wait.percentile(0.99).unwrap_or(0.0) * 1e3,
            f.slo_attainment()
        );
    }
    println!(
        "\ncluster: {:.1}% allocated / {:.1}% busy; {} of {} epochs overloaded; {} failed creates",
        report.allocated_utilization * 100.0,
        report.busy_utilization * 100.0,
        report.overloaded_epochs,
        report.epochs,
        report.failed_creates
    );
    if let Some(p) = json_out {
        std::fs::write(&p, serde_json::to_string_pretty(&report).expect("serializable"))
            .unwrap_or_else(|e| {
                eprintln!("error: writing {p}: {e}");
                std::process::exit(1);
            });
        eprintln!("(wrote {p})");
    }
}
