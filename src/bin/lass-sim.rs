//! `lass-sim` — run a declarative JSON scenario through the simulator
//! and print the per-function report.
//!
//! The scenario's `"policy"` field picks the scheduler: `"lass"` (the
//! paper's controller, default), `"static-rr"` (fixed pools, round-robin
//! dispatch), `"knative"` (concurrency-target autoscaling), or
//! `"openwhisk"` (the §6.6 sharding-pool baseline). An optional
//! `"topology"` block federates the run across several cluster sites
//! behind a front-end router (see `scenarios/federated-*.json`), and an
//! optional `"chaos"` block injects site crashes, router↔site
//! partitions, and container-crash bursts with cross-site migration
//! (see `scenarios/chaos-*.json`).
//!
//! ```sh
//! cargo run --bin lass-sim -- scenarios/demo.json [--json out.json]
//! ```

use lass::scenario::{Scenario, ScenarioReport};

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: lass-sim <scenario.json> [--json <report.json>]");
        std::process::exit(2);
    };
    let json_out = match (args.next().as_deref(), args.next()) {
        (Some("--json"), Some(p)) => Some(p),
        (None, _) => None,
        _ => {
            eprintln!("usage: lass-sim <scenario.json> [--json <report.json>]");
            std::process::exit(2);
        }
    };

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("error: reading {path}: {e}");
        std::process::exit(1);
    });
    let scenario = Scenario::from_json(&text).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let report = scenario.run_report().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });

    println!("policy: {}\n", scenario.policy.as_str());
    match report {
        ScenarioReport::Lass(mut report) => {
            println!(
                "{:>4} {:>18} {:>9} {:>9} {:>7} {:>10} {:>10} {:>8}",
                "fn", "name", "arrivals", "done", "rerun", "p95W(ms)", "p99W(ms)", "attain"
            );
            for (id, f) in report.per_fn.iter_mut() {
                println!(
                    "{:>4} {:>18} {:>9} {:>9} {:>7} {:>10.1} {:>10.1} {:>8.3}",
                    id,
                    f.name,
                    f.arrivals,
                    f.completed,
                    f.reruns,
                    f.wait.percentile(0.95).unwrap_or(0.0) * 1e3,
                    f.wait.percentile(0.99).unwrap_or(0.0) * 1e3,
                    f.slo_attainment()
                );
            }
            println!(
                "\ncluster: {:.1}% allocated / {:.1}% busy; {} of {} epochs overloaded; {} failed creates",
                report.allocated_utilization * 100.0,
                report.busy_utilization * 100.0,
                report.overloaded_epochs,
                report.epochs,
                report.failed_creates
            );
            write_json(json_out.as_deref(), &report);
        }
        ScenarioReport::OpenWhisk(mut report) => {
            println!(
                "{:>4} {:>18} {:>9} {:>9} {:>7} {:>10} {:>8}",
                "fn", "name", "arrivals", "done", "lost", "p95W(ms)", "viol"
            );
            for (id, f) in report.per_fn.iter_mut() {
                println!(
                    "{:>4} {:>18} {:>9} {:>9} {:>7} {:>10.1} {:>8}",
                    id,
                    f.name,
                    f.arrivals,
                    f.completed,
                    f.lost,
                    f.wait.percentile(0.95).unwrap_or(0.0) * 1e3,
                    f.slo_violations
                );
            }
            println!("\noutstanding at end: {}", report.outstanding);
            if report.failures.is_empty() {
                println!("no invoker failures");
            } else {
                for (inv, t) in &report.failures {
                    println!("invoker {inv} went unresponsive at {t:.1}s");
                }
                if let Some(t) = report.cascade_complete_at {
                    println!("cascade completed at {t:.1}s");
                }
            }
            write_json(json_out.as_deref(), &report);
        }
        ScenarioReport::Federated(mut report) => {
            println!("router: {}\n", report.router);
            println!(
                "{:>10} {:>9} {:>9} {:>9} {:>7} {:>7} {:>6} {:>8} {:>6} {:>10} {:>12}",
                "site",
                "lat(ms)",
                "routed",
                "done",
                "t/o",
                "migr",
                "fail",
                "down(s)",
                "flaky",
                "p95W(ms)",
                "util c/m/b"
            );
            for site in report.per_site.iter_mut() {
                let (mut done, mut timeouts) = (0, 0);
                let mut waits = lass_simcore::SampleStats::new();
                for f in site.report.per_fn.values() {
                    done += f.completed;
                    timeouts += f.timeouts;
                    for &w in f.wait.samples() {
                        waits.record(w);
                    }
                }
                // Per-dimension end-of-run utilization (cpu/mem/bw, in
                // percent); only multi-dimensional runs report it.
                let util = site.utilization.map_or_else(
                    || "-".to_string(),
                    |u| {
                        format!(
                            "{:.0}/{:.0}/{:.0}%",
                            u[0] * 100.0,
                            u[1] * 100.0,
                            u[2] * 100.0
                        )
                    },
                );
                println!(
                    "{:>10} {:>9.1} {:>9} {:>9} {:>7} {:>7} {:>6} {:>8.1} {:>6.2} {:>10.1} {:>12}",
                    site.name,
                    site.latency_secs * 1e3,
                    site.routed,
                    done,
                    timeouts,
                    site.migrated,
                    site.failed,
                    site.downtime_secs,
                    site.flakiness,
                    waits.percentile(0.95).unwrap_or(0.0) * 1e3,
                    util,
                );
            }
            if report.unroutable > 0 {
                println!(
                    "\n{} arrivals shed at the front door (no routable site)",
                    report.unroutable
                );
            }
            println!(
                "\n{:>4} {:>18} {:>9} {:>9} {:>7} {:>10} {:>10}",
                "fn", "name", "arrivals", "done", "lost", "p95W(ms)", "p99W(ms)"
            );
            for (id, f) in report.aggregate_per_fn.iter_mut().enumerate() {
                println!(
                    "{:>4} {:>18} {:>9} {:>9} {:>7} {:>10.1} {:>10.1}",
                    id,
                    f.name,
                    f.arrivals,
                    f.completed,
                    f.lost,
                    f.wait.percentile(0.95).unwrap_or(0.0) * 1e3,
                    f.wait.percentile(0.99).unwrap_or(0.0) * 1e3,
                );
            }
            println!("\noutstanding at end: {}", report.outstanding);
            write_json(json_out.as_deref(), &report);
        }
    }
}

/// Serialize and write the report only when `--json` was requested.
fn write_json<T: serde::Serialize>(path: Option<&str>, report: &T) {
    let Some(p) = path else { return };
    let json = serde_json::to_string_pretty(report).expect("serializable");
    std::fs::write(p, json).unwrap_or_else(|e| {
        eprintln!("error: writing {p}: {e}");
        std::process::exit(1);
    });
    eprintln!("(wrote {p})");
}
