//! `lass-sweep` — fan a scenario grid across worker threads and emit
//! one JSON table.
//!
//! Takes a sweep spec: a base scenario plus the grid axes to vary —
//! rate multipliers, scheduling policies, front-end routers (for
//! federated scenarios), chaos profiles, and seeds. Every combination
//! is an independent simulation; they run in parallel on the rayon
//! thread pool and the collected rows (one summary per run, in grid
//! order) are printed as a JSON array on stdout.
//!
//! ```sh
//! cargo run --release --bin lass-sweep -- scenarios/sweep-demo.json [--out table.json]
//! ```
//!
//! Spec format (every axis optional; omitted axes keep the base
//! scenario's setting):
//!
//! ```json
//! {
//!     "scenario": "scenarios/demo.json",
//!     "rate_scales": [0.5, 1.0, 2.0],
//!     "policies": ["lass", "static-rr", "knative"],
//!     "routers": ["round-robin", "latency-aware"],
//!     "chaos": [
//!         { "name": "baseline" },
//!         { "name": "crash", "events": [ { "at": 60.0, "kind": "site-down", "site": "edge" } ] }
//!     ],
//!     "report_intervals_ms": [0, 250, 1000],
//!     "seeds": [42, 43, 44]
//! }
//! ```
//!
//! The `report_intervals_ms` axis sweeps telemetry staleness: each value
//! replaces `topology.telemetry.report_interval_ms`, so the same grid
//! cell runs once with oracle-fresh routing (`0`) and once per
//! propagation delay — the decay curve of router advantage vs staleness
//! falls straight out of the table.

use lass::scenario::{ChaosSpec, Scenario, ScenarioPolicy, ScenarioReport};
use lass_simcore::{HedgeConfig, HedgeTrigger, RouterKind, SampleStats};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The sweep specification.
#[derive(Debug, Deserialize)]
struct SweepSpec {
    /// Path to the base scenario JSON (relative to the cwd). Exactly one
    /// of `scenario` / `base` must be given.
    #[serde(default)]
    scenario: Option<String>,
    /// Inline base scenario.
    #[serde(default)]
    base: Option<Scenario>,
    /// Rate multipliers applied to every function's workload.
    #[serde(default)]
    rate_scales: Option<Vec<f64>>,
    /// Scheduling policies to run.
    #[serde(default)]
    policies: Option<Vec<ScenarioPolicy>>,
    /// Front-end routers (requires a `topology` in the base scenario).
    #[serde(default)]
    routers: Option<Vec<RouterKind>>,
    /// Chaos profiles (requires a `topology` in the base scenario).
    /// Each profile replaces the base scenario's `chaos` block; an empty
    /// profile (`{ "name": "baseline" }`) is the fault-free control.
    #[serde(default)]
    chaos: Option<Vec<ChaosSpec>>,
    /// Telemetry report intervals (milliseconds) to sweep; each value
    /// overwrites `topology.telemetry.report_interval_ms` (requires a
    /// `topology` in the base scenario). `0` is the oracle-fresh
    /// control.
    #[serde(default)]
    report_intervals_ms: Option<Vec<f64>>,
    /// Hedging configurations to sweep (requires a `topology` in the
    /// base scenario). Each entry replaces `topology.hedge`; `null` is
    /// the single-dispatch control. Example:
    /// `[null, {"trigger": "immediate", "max_clones": 1},
    ///   {"trigger": {"deferred_ms": 50}, "max_clones": 1}]`.
    #[serde(default)]
    hedges: Option<Vec<Option<HedgeConfig>>>,
    /// RNG seeds.
    #[serde(default)]
    seeds: Option<Vec<u64>>,
    /// Override the topology's `parallel_sites` knob for every cell
    /// (requires a `topology` in the base scenario): run each federated
    /// cell on this many worker threads via the conservative parallel
    /// executor. Cells still run concurrently on the rayon pool, so
    /// prefer this only when sweeping a few large scenarios.
    #[serde(default)]
    parallel_sites: Option<usize>,
}

/// One row of the output table: the grid point plus run summary
/// statistics aggregated over every function.
#[derive(Debug, Serialize)]
struct SweepRow {
    policy: String,
    router: Option<String>,
    chaos: Option<String>,
    /// Grid point on the staleness axis; `None` when the sweep spec has
    /// no `report_intervals_ms` axis (the base scenario's telemetry
    /// block, if any, applies unchanged).
    report_interval_ms: Option<f64>,
    /// Grid point on the hedging axis (`"off"`, `"immediate x2"`, ...);
    /// `None` when the sweep spec has no `hedges` axis.
    hedge: Option<String>,
    rate_scale: f64,
    seed: u64,
    /// Worker threads the cell actually ran on, as recorded by the
    /// engine (1 = sequential, including parallel requests that fell
    /// back or were clamped to the site count).
    threads: usize,
    arrivals: usize,
    completed: usize,
    lost: usize,
    timeouts: usize,
    slo_violations: usize,
    migrated: usize,
    failed: usize,
    /// Hedge clones dispatched (0 with hedging off).
    hedged: usize,
    /// Hedge clones cancelled after a sibling won.
    cancelled: usize,
    /// Clones whose site finished the work after the race was already
    /// decided — the honest cost column of the hedging tail table.
    wasted_work: usize,
    /// End-of-run cpu allocation fraction, maximum across sites; only
    /// multi-dimensional runs (a non-compute class or the planner
    /// router) report the trio, everything else stays `null`.
    util_cpu: Option<f64>,
    /// End-of-run memory allocation fraction, maximum across sites.
    util_mem: Option<f64>,
    /// End-of-run bandwidth allocation fraction, maximum across sites.
    util_bw: Option<f64>,
    slo_attainment: f64,
    mean_wait_ms: f64,
    p95_wait_ms: f64,
    p99_wait_ms: f64,
    p95_response_ms: f64,
    p99_response_ms: f64,
    duration_secs: f64,
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: lass-sweep <sweep.json> [--out <table.json>]");
        std::process::exit(2);
    };
    let out_path = match (args.next().as_deref(), args.next()) {
        (Some("--out"), Some(p)) => Some(p),
        (None, _) => None,
        _ => {
            eprintln!("usage: lass-sweep <sweep.json> [--out <table.json>]");
            std::process::exit(2);
        }
    };

    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| fail(format!("reading {path}: {e}")));
    let spec: SweepSpec =
        serde_json::from_str(&text).unwrap_or_else(|e| fail(format!("sweep spec: {e}")));

    let base: Scenario = match (&spec.base, &spec.scenario) {
        (Some(base), None) => base.clone(),
        (None, Some(p)) => {
            let text =
                std::fs::read_to_string(p).unwrap_or_else(|e| fail(format!("reading {p}: {e}")));
            Scenario::from_json(&text).unwrap_or_else(|e| fail(e))
        }
        _ => fail("sweep spec needs exactly one of \"scenario\" (path) or \"base\" (inline)"),
    };

    let scales = spec.rate_scales.unwrap_or_else(|| vec![1.0]);
    let policies = spec.policies.unwrap_or_else(|| vec![base.policy]);
    let seeds = spec.seeds.unwrap_or_else(|| vec![base.seed]);
    let routers: Vec<Option<RouterKind>> = match spec.routers {
        Some(list) => {
            if base.topology.is_none() {
                fail("\"routers\" requires the base scenario to have a \"topology\" block");
            }
            list.into_iter().map(Some).collect()
        }
        None => vec![None],
    };
    if spec.parallel_sites.is_some() && base.topology.is_none() {
        fail("\"parallel_sites\" requires the base scenario to have a \"topology\" block");
    }
    let chaos_profiles: Vec<Option<ChaosSpec>> = match spec.chaos {
        Some(list) => {
            if base.topology.is_none() {
                fail("\"chaos\" requires the base scenario to have a \"topology\" block");
            }
            list.into_iter().map(Some).collect()
        }
        None => vec![None],
    };
    let report_intervals: Vec<Option<f64>> = match spec.report_intervals_ms {
        Some(list) => {
            if base.topology.is_none() {
                fail("\"report_intervals_ms\" requires the base scenario to have a \"topology\" block");
            }
            list.into_iter().map(Some).collect()
        }
        None => vec![None],
    };
    let hedges: Vec<Option<Option<HedgeConfig>>> = match spec.hedges {
        Some(list) => {
            if base.topology.is_none() {
                fail("\"hedges\" requires the base scenario to have a \"topology\" block");
            }
            list.into_iter().map(Some).collect()
        }
        None => vec![None],
    };

    // Build the full grid up front; each cell is an independent scenario.
    let mut grid: Vec<(Scenario, SweepRowKey)> = Vec::new();
    for &scale in &scales {
        for &policy in &policies {
            for &router in &routers {
                for chaos in &chaos_profiles {
                    for &interval in &report_intervals {
                        for &hedge in &hedges {
                            for &seed in &seeds {
                                let mut sc = base.clone();
                                sc.seed = seed;
                                sc.policy = policy;
                                for f in &mut sc.functions {
                                    f.workload = f.workload.scale_rate(scale);
                                }
                                if let (Some(r), Some(topo)) = (router, sc.topology.as_mut()) {
                                    topo.router = r;
                                }
                                if let (Some(n), Some(topo)) =
                                    (spec.parallel_sites, sc.topology.as_mut())
                                {
                                    topo.parallel_sites = Some(n);
                                }
                                if let (Some(ms), Some(topo)) = (interval, sc.topology.as_mut()) {
                                    topo.telemetry.report_interval_ms = ms;
                                }
                                if let (Some(h), Some(topo)) = (hedge, sc.topology.as_mut()) {
                                    topo.hedge = h;
                                }
                                if let Some(profile) = chaos {
                                    sc.chaos = Some(profile.clone());
                                }
                                grid.push((
                                    sc,
                                    SweepRowKey {
                                        policy,
                                        router,
                                        chaos: chaos.as_ref().map(ChaosSpec::label),
                                        report_interval_ms: interval,
                                        hedge: hedge.map(|h| hedge_label(&h)),
                                        rate_scale: scale,
                                        seed,
                                    },
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
    eprintln!("sweep: {} runs across the grid", grid.len());

    let rows: Vec<SweepRow> = grid
        .into_par_iter()
        .map(|(sc, key)| run_cell(&sc, &key).unwrap_or_else(|e| fail(e)))
        .collect();

    let json = serde_json::to_string_pretty(&rows).expect("serializable");
    match out_path {
        Some(p) => {
            std::fs::write(&p, &json).unwrap_or_else(|e| fail(format!("writing {p}: {e}")));
            eprintln!("(wrote {p})");
        }
        None => println!("{json}"),
    }
}

#[derive(Clone)]
struct SweepRowKey {
    policy: ScenarioPolicy,
    router: Option<RouterKind>,
    chaos: Option<String>,
    report_interval_ms: Option<f64>,
    hedge: Option<String>,
    rate_scale: f64,
    seed: u64,
}

/// Human-readable grid label for a hedging axis entry.
fn hedge_label(h: &Option<HedgeConfig>) -> String {
    match h {
        None => "off".into(),
        Some(cfg) => {
            // A speculative-retry deadline supersedes the clone trigger.
            let trigger = if cfg.retry_after_ms > 0.0 {
                format!("retry-{}ms", cfg.retry_after_ms)
            } else {
                match cfg.trigger {
                    HedgeTrigger::Immediate => "immediate".to_string(),
                    HedgeTrigger::DeferredMs(ms) => format!("deferred-{ms}ms"),
                    HedgeTrigger::PredictedP95OverSlo => "p95-over-slo".to_string(),
                }
            };
            let mut label = format!("{trigger} x{}", cfg.max_clones);
            if cfg.waste_budget > 0.0 {
                label.push_str(&format!(" w{}", cfg.waste_budget));
            }
            label
        }
    }
}

/// Run one grid cell and summarize whichever report shape it produced.
fn run_cell(sc: &Scenario, key: &SweepRowKey) -> Result<SweepRow, String> {
    let report = sc.run_report()?;
    let mut row = SweepRow {
        policy: key.policy.as_str().to_owned(),
        router: key.router.map(|r| r.as_str().to_owned()),
        chaos: key.chaos.clone(),
        report_interval_ms: key.report_interval_ms,
        hedge: key.hedge.clone(),
        rate_scale: key.rate_scale,
        seed: key.seed,
        threads: 1,
        arrivals: 0,
        completed: 0,
        lost: 0,
        timeouts: 0,
        slo_violations: 0,
        migrated: 0,
        failed: 0,
        hedged: 0,
        cancelled: 0,
        wasted_work: 0,
        util_cpu: None,
        util_mem: None,
        util_bw: None,
        slo_attainment: 1.0,
        mean_wait_ms: 0.0,
        p95_wait_ms: 0.0,
        p99_wait_ms: 0.0,
        p95_response_ms: 0.0,
        p99_response_ms: 0.0,
        duration_secs: 0.0,
    };
    let mut waits = SampleStats::new();
    let mut responses = SampleStats::new();
    match report {
        ScenarioReport::Lass(rep) => {
            row.duration_secs = rep.duration;
            for f in rep.per_fn.values() {
                row.arrivals += f.arrivals;
                row.completed += f.completed;
                row.timeouts += f.timeouts;
                row.slo_violations += f.slo_violations;
                pool(&mut waits, &f.wait);
                pool(&mut responses, &f.response);
            }
        }
        ScenarioReport::OpenWhisk(rep) => {
            // OwReport carries no duration; recompute the simulator's
            // default (longest workload) when the override is absent.
            row.duration_secs = sc.duration_secs.unwrap_or_else(|| {
                sc.functions
                    .iter()
                    .map(|f| f.workload.duration())
                    .fold(0.0f64, f64::max)
            });
            for f in rep.per_fn.values() {
                row.arrivals += f.arrivals;
                row.completed += f.completed;
                row.lost += f.lost;
                row.slo_violations += f.slo_violations;
                // OwFnReport carries no response samples; the response
                // percentile stays 0 for openwhisk rows.
                pool(&mut waits, &f.wait);
            }
        }
        ScenarioReport::Federated(rep) => {
            row.duration_secs = rep.duration;
            row.threads = rep.threads;
            for f in &rep.aggregate_per_fn {
                row.arrivals += f.arrivals;
                row.completed += f.completed;
                row.lost += f.lost;
                row.timeouts += f.timeouts;
                row.slo_violations += f.slo_violations;
                row.hedged += f.hedged;
                row.cancelled += f.cancelled;
                pool(&mut waits, &f.wait);
                pool(&mut responses, &f.response);
            }
            for site in &rep.per_site {
                row.migrated += site.migrated;
                row.failed += site.failed;
                row.wasted_work += site.wasted_work;
                if let Some(u) = site.utilization {
                    row.util_cpu = Some(row.util_cpu.unwrap_or(0.0).max(u[0]));
                    row.util_mem = Some(row.util_mem.unwrap_or(0.0).max(u[1]));
                    row.util_bw = Some(row.util_bw.unwrap_or(0.0).max(u[2]));
                }
            }
            row.failed += rep.unroutable;
        }
    }
    let finished = row.completed + row.timeouts;
    row.slo_attainment = if finished == 0 {
        1.0
    } else {
        1.0 - row.slo_violations as f64 / finished as f64
    };
    row.mean_wait_ms = waits.mean().unwrap_or(0.0) * 1e3;
    row.p95_wait_ms = waits.percentile(0.95).unwrap_or(0.0) * 1e3;
    row.p99_wait_ms = waits.percentile(0.99).unwrap_or(0.0) * 1e3;
    row.p95_response_ms = responses.percentile(0.95).unwrap_or(0.0) * 1e3;
    row.p99_response_ms = responses.percentile(0.99).unwrap_or(0.0) * 1e3;
    Ok(row)
}

/// Pool one instrument's samples into the run-level aggregate.
fn pool(into: &mut SampleStats, from: &SampleStats) {
    for &w in from.samples() {
        into.record(w);
    }
}
