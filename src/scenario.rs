//! Declarative simulation scenarios.
//!
//! A scenario is a JSON document describing a cluster, a controller
//! configuration, and a set of functions with workloads — everything
//! needed to run a LaSS simulation without writing Rust. Used by the
//! `lass-sim` binary:
//!
//! ```sh
//! cargo run --bin lass-sim -- scenarios/demo.json
//! ```

use lass_cluster::{Cluster, CpuMilli, MemMib, PlacementPolicy, UserId};
use lass_core::{FunctionSetup, LassConfig, SimReport, Simulation};
use lass_functions::{
    binary_alert, geofence, image_resizer, micro_benchmark, mobilenet_v2, shufflenet_v2,
    squeezenet, FunctionSpec, WorkloadSpec,
};
use serde::{Deserialize, Serialize};

/// Cluster shape.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of worker nodes.
    pub nodes: u32,
    /// CPU per node in milli-vCPU.
    pub cpu_milli: u32,
    /// Memory per node in MiB.
    pub mem_mib: u32,
    /// Placement policy (defaults to best-fit).
    #[serde(default)]
    pub placement: PlacementPolicy,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        // The paper's testbed.
        Self {
            nodes: 3,
            cpu_milli: 4000,
            mem_mib: 16 * 1024,
            placement: PlacementPolicy::BestFit,
        }
    }
}

/// A function entry: either a catalog name or a custom spec.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(untagged)]
pub enum FunctionRef {
    /// One of the Table 1 functions by name (`"mobilenet_v2"`,
    /// `"squeezenet"`, …; `"micro_benchmark:<ms>"` for the configurable
    /// micro-benchmark).
    Catalog(String),
    /// A fully custom function spec.
    Custom(FunctionSpec),
}

impl FunctionRef {
    /// Materialize the spec.
    pub fn resolve(&self) -> Result<FunctionSpec, String> {
        match self {
            FunctionRef::Custom(spec) => Ok(spec.clone()),
            FunctionRef::Catalog(name) => {
                if let Some(ms) = name.strip_prefix("micro_benchmark:") {
                    let ms: f64 = ms
                        .parse()
                        .map_err(|_| format!("bad micro_benchmark service time: {name}"))?;
                    return Ok(micro_benchmark(ms / 1e3));
                }
                match name.as_str() {
                    "micro_benchmark" => Ok(micro_benchmark(0.1)),
                    "mobilenet_v2" => Ok(mobilenet_v2()),
                    "shufflenet_v2" => Ok(shufflenet_v2()),
                    "squeezenet" => Ok(squeezenet()),
                    "binary_alert" => Ok(binary_alert()),
                    "geofence" => Ok(geofence()),
                    "image_resizer" => Ok(image_resizer()),
                    other => Err(format!("unknown catalog function: {other}")),
                }
            }
        }
    }
}

/// One deployed function in a scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FunctionEntry {
    /// The function (catalog name or custom spec).
    pub function: FunctionRef,
    /// SLO deadline in milliseconds (waiting time).
    pub slo_ms: f64,
    /// Workload specification.
    pub workload: WorkloadSpec,
    /// Weight within the user (default 1).
    #[serde(default = "one")]
    pub weight: f64,
    /// Owning user id (default 0).
    #[serde(default)]
    pub user: u32,
    /// The user's weight (default 1; the last entry per user wins).
    #[serde(default = "one")]
    pub user_weight: f64,
    /// Containers provisioned warm at t = 0 (default 0).
    #[serde(default)]
    pub initial_containers: u32,
}

fn one() -> f64 {
    1.0
}

/// A complete simulation scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// RNG seed (default 42).
    #[serde(default = "default_seed")]
    pub seed: u64,
    /// Cluster shape (default: the paper's 3×4-vCPU testbed).
    #[serde(default)]
    pub cluster: ClusterSpec,
    /// Controller configuration (default: the paper's settings).
    #[serde(default)]
    pub config: LassConfig,
    /// Deployed functions.
    pub functions: Vec<FunctionEntry>,
    /// Optional duration override in seconds (default: longest workload).
    #[serde(default)]
    pub duration_secs: Option<f64>,
}

fn default_seed() -> u64 {
    42
}

impl Scenario {
    /// Parse from JSON.
    pub fn from_json(text: &str) -> Result<Scenario, String> {
        serde_json::from_str(text).map_err(|e| format!("scenario parse error: {e}"))
    }

    /// Build and run the simulation.
    pub fn run(&self) -> Result<SimReport, String> {
        if self.functions.is_empty() {
            return Err("scenario has no functions".into());
        }
        self.config.validate()?;
        let cluster = Cluster::homogeneous(
            self.cluster.nodes,
            CpuMilli(self.cluster.cpu_milli),
            MemMib(self.cluster.mem_mib),
            self.cluster.placement,
        );
        let mut sim = Simulation::new(self.config.clone(), cluster, self.seed);
        for entry in &self.functions {
            let spec = entry.function.resolve()?;
            let mut setup = FunctionSetup::new(spec, entry.slo_ms / 1e3, entry.workload.clone());
            setup.weight = entry.weight;
            setup.user = UserId(entry.user);
            setup.user_weight = entry.user_weight;
            setup.initial_containers = entry.initial_containers;
            sim.add_function(setup);
        }
        Ok(sim.run(self.duration_secs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = r#"{
        "seed": 7,
        "cluster": { "nodes": 3, "cpu_milli": 4000, "mem_mib": 16384 },
        "functions": [
            {
                "function": "micro_benchmark:100",
                "slo_ms": 100,
                "workload": { "Static": { "rate": 15.0, "duration": 60.0 } },
                "initial_containers": 2
            },
            {
                "function": "squeezenet",
                "slo_ms": 100,
                "user": 1,
                "user_weight": 2.0,
                "workload": { "Steps": { "steps": [[0.0, 0.0], [30.0, 10.0]], "duration": 60.0 } }
            }
        ]
    }"#;

    #[test]
    fn demo_scenario_parses_and_runs() {
        let sc = Scenario::from_json(DEMO).expect("valid scenario");
        assert_eq!(sc.seed, 7);
        assert_eq!(sc.functions.len(), 2);
        let report = sc.run().expect("runs");
        assert!(report.per_fn[&0].completed > 500);
        assert!(report.per_fn[&1].completed > 100);
    }

    #[test]
    fn catalog_names_resolve() {
        for name in [
            "micro_benchmark",
            "mobilenet_v2",
            "shufflenet_v2",
            "squeezenet",
            "binary_alert",
            "geofence",
            "image_resizer",
        ] {
            assert!(FunctionRef::Catalog(name.into()).resolve().is_ok(), "{name}");
        }
        assert!(FunctionRef::Catalog("nope".into()).resolve().is_err());
        let mb = FunctionRef::Catalog("micro_benchmark:250".into())
            .resolve()
            .unwrap();
        assert!((mb.service.base_time - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_scenario_rejected() {
        let sc = Scenario {
            seed: 1,
            cluster: ClusterSpec::default(),
            config: LassConfig::default(),
            functions: vec![],
            duration_secs: None,
        };
        assert!(sc.run().is_err());
    }

    #[test]
    fn custom_function_round_trips_through_json() {
        let spec = micro_benchmark(0.2);
        let entry = FunctionEntry {
            function: FunctionRef::Custom(spec),
            slo_ms: 150.0,
            workload: WorkloadSpec::Static {
                rate: 5.0,
                duration: 30.0,
            },
            weight: 1.0,
            user: 0,
            user_weight: 1.0,
            initial_containers: 1,
        };
        let json = serde_json::to_string(&entry).unwrap();
        let back: FunctionEntry = serde_json::from_str(&json).unwrap();
        assert!(back.function.resolve().is_ok());
    }
}
