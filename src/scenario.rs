//! Declarative simulation scenarios.
//!
//! A scenario is a JSON document describing a cluster, a controller
//! configuration, and a set of functions with workloads — everything
//! needed to run a LaSS simulation without writing Rust. Used by the
//! `lass-sim` binary:
//!
//! ```sh
//! cargo run --bin lass-sim -- scenarios/demo.json
//! ```

use lass_cluster::{Cluster, CpuMilli, MemMib, PlacementPolicy, Topology, UserId};
use lass_core::{
    FederatedSimReport, FederatedSimulation, FunctionSetup, KnativeSimulation, LassConfig,
    SimReport, Simulation, SitePolicyKind, StaticRrSimulation,
};
use lass_functions::{
    binary_alert, geofence, image_resizer, micro_benchmark, mobilenet_v2, shufflenet_v2,
    squeezenet, FunctionSpec, WorkloadClass, WorkloadSpec,
};
use lass_openwhisk::{OwConfig, OwFunctionSetup, OwReport, OwSimulation};
use lass_simcore::{
    ChaosConfig, Fault, HedgeConfig, RouterConfig, RouterKind, SimDuration, TelemetryConfig,
};
use serde::{Deserialize, Serialize};

/// Cluster shape.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of worker nodes.
    pub nodes: u32,
    /// CPU per node in milli-vCPU.
    pub cpu_milli: u32,
    /// Memory per node in MiB.
    pub mem_mib: u32,
    /// Network bandwidth per node in Mbps. Omit for the node default
    /// (effectively unconstrained); set it to make the bandwidth
    /// dimension bind for `"io"`-class functions.
    #[serde(default)]
    pub bw_mbps: Option<u32>,
    /// Placement policy (defaults to best-fit).
    #[serde(default)]
    pub placement: PlacementPolicy,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        // The paper's testbed.
        Self {
            nodes: 3,
            cpu_milli: 4000,
            mem_mib: 16 * 1024,
            bw_mbps: None,
            placement: PlacementPolicy::BestFit,
        }
    }
}

impl ClusterSpec {
    /// Check the shape before building.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("cluster needs at least one node".into());
        }
        if self.cpu_milli == 0 || self.mem_mib == 0 {
            return Err("cluster nodes need non-zero cpu_milli and mem_mib".into());
        }
        if self.bw_mbps == Some(0) {
            return Err("cluster nodes need non-zero bw_mbps when set".into());
        }
        Ok(())
    }

    /// Materialize the cluster.
    pub fn build(&self) -> Cluster {
        match self.bw_mbps {
            Some(bw) => Cluster::homogeneous_vec(
                self.nodes,
                lass_cluster::ResourceVec::new(
                    CpuMilli(self.cpu_milli),
                    MemMib(self.mem_mib),
                    lass_cluster::BwMbps(bw),
                ),
                self.placement,
            ),
            None => Cluster::homogeneous(
                self.nodes,
                CpuMilli(self.cpu_milli),
                MemMib(self.mem_mib),
                self.placement,
            ),
        }
    }
}

/// Which scheduler runs the scenario.
///
/// All four are [`SchedulerPolicy`](lass_simcore::SchedulerPolicy)
/// implementations on the shared discrete-event engine; the JSON spelling
/// is lowercase (`"lass"`, `"static-rr"`, `"knative"`, `"openwhisk"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScenarioPolicy {
    /// The LaSS controller (model-driven autoscaling, fair share).
    #[default]
    Lass,
    /// Static allocation with round-robin dispatch (no autoscaling).
    StaticRr,
    /// Knative-style concurrency-target autoscaling (Little's-law
    /// heuristic; borrows `config.scaler`'s `ConcurrencyTarget` knob).
    Knative,
    /// The vanilla-OpenWhisk sharding-pool baseline (§6.6).
    OpenWhisk,
}

impl ScenarioPolicy {
    /// The JSON spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ScenarioPolicy::Lass => "lass",
            ScenarioPolicy::StaticRr => "static-rr",
            ScenarioPolicy::Knative => "knative",
            ScenarioPolicy::OpenWhisk => "openwhisk",
        }
    }
}

impl serde::Serialize for ScenarioPolicy {
    fn serialize(&self) -> serde::Value {
        serde::Value::String(self.as_str().to_owned())
    }
}

impl serde::Deserialize for ScenarioPolicy {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        match v.as_str() {
            Some("lass") => Ok(ScenarioPolicy::Lass),
            Some("static-rr" | "static_rr" | "static") => Ok(ScenarioPolicy::StaticRr),
            Some("knative" | "concurrency-target") => Ok(ScenarioPolicy::Knative),
            Some("openwhisk" | "ow") => Ok(ScenarioPolicy::OpenWhisk),
            Some(other) => Err(serde::Error::custom(format!(
                "unknown policy {other:?} (expected \"lass\", \"static-rr\", \"knative\", or \"openwhisk\")"
            ))),
            None => Err(serde::Error::custom("policy must be a string")),
        }
    }
}

/// One site of a federated scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteSpec {
    /// Site display name (unique within the topology).
    pub name: String,
    /// The site's cluster shape (defaults to the paper's testbed).
    #[serde(default)]
    pub cluster: ClusterSpec,
    /// One-way network latency (milliseconds) from the front-end router
    /// to the site; added to every routed request's response time.
    #[serde(default)]
    pub latency_ms: f64,
}

/// The optional `topology` block: run the scenario over a federation of
/// named cluster sites behind a front-end router instead of a single
/// cluster. The scenario's `policy` is instantiated once per site
/// (`"openwhisk"` is not federatable).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopologySpec {
    /// Which front-end router dispatches arrivals across sites
    /// (`"round-robin"`, `"least-loaded"`, `"latency-aware"`,
    /// `"slo-aware"`, `"affinity"`, or `"failure-aware"`; default
    /// round-robin).
    #[serde(default)]
    pub router: RouterKind,
    /// Knobs for the model-driven routers and the per-site telemetry
    /// feeding them: SLO budget, target percentile, hysteresis, spill
    /// and brown-out thresholds, and the λ̂/μ̂/health EWMA constants.
    /// Partial blocks fill from defaults; harmless for the non-model
    /// routers.
    #[serde(default)]
    pub router_config: RouterConfig,
    /// Worker threads for the conservative-synchronization parallel
    /// executor (omit or `null` for the sequential engine). Needs a
    /// multi-site topology where every `latency_ms` is strictly
    /// positive — zero latency leaves the executor no lookahead, so
    /// such topologies warn and fall back to the sequential engine.
    #[serde(default)]
    pub parallel_sites: Option<usize>,
    /// Telemetry propagation between sites and the router (omit for
    /// oracle-fresh routing, byte-identical to the classic engine).
    #[serde(default)]
    pub telemetry: TelemetrySpec,
    /// Request hedging: `{"trigger": "immediate" | {"deferred_ms": N} |
    /// "predicted-p95-over-slo", "max_clones": N}`. The router races
    /// extra copies of each request across sites; the first response
    /// wins and cancels chase the losers at network latency. Omit for
    /// the single-dispatch engine, byte-identical to pre-hedging runs.
    #[serde(default)]
    pub hedge: Option<HedgeConfig>,
    /// The sites, in id order.
    pub sites: Vec<SiteSpec>,
}

/// The optional `topology.telemetry` block: how site state reaches the
/// front-end router. With a nonzero `report_interval_ms` each site
/// publishes a snapshot of its telemetry (λ̂/μ̂ forecast inputs, warm
/// census, health, server count) on a jittered interval; the snapshot
/// travels at the site's network latency, and routing decisions score
/// sites on the last snapshot that *arrived* rather than on live state.
/// `report_interval_ms: 0` (the default) keeps the oracle-fresh hot
/// path, byte-for-byte.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TelemetrySpec {
    /// Milliseconds between snapshot publishes per site; 0 disables the
    /// propagation model entirely (oracle-fresh routing).
    #[serde(default)]
    pub report_interval_ms: f64,
    /// Uniform jitter added to each publish slot, in milliseconds; must
    /// not exceed the interval (so slots never reorder).
    #[serde(default)]
    pub jitter_ms: f64,
    /// Drop snapshots published while a router↔site partition is
    /// active (default true); `false` models an out-of-band telemetry
    /// channel that survives data-plane partitions.
    #[serde(default = "default_true")]
    pub loss_under_partition: bool,
    /// Per-snapshot loss probability independent of partitions
    /// (background control-plane packet loss); default 0.
    #[serde(default)]
    pub loss_prob: f64,
}

fn default_true() -> bool {
    true
}

impl Default for TelemetrySpec {
    fn default() -> Self {
        Self {
            report_interval_ms: 0.0,
            jitter_ms: 0.0,
            loss_under_partition: true,
            loss_prob: 0.0,
        }
    }
}

impl TelemetrySpec {
    fn to_config(&self) -> Result<TelemetryConfig, String> {
        if !(self.report_interval_ms.is_finite() && self.report_interval_ms >= 0.0) {
            return Err("topology.telemetry.report_interval_ms must be finite and >= 0".into());
        }
        if !(self.jitter_ms.is_finite() && self.jitter_ms >= 0.0) {
            return Err("topology.telemetry.jitter_ms must be finite and >= 0".into());
        }
        let cfg = TelemetryConfig {
            report_interval: SimDuration::from_secs_f64(self.report_interval_ms / 1e3),
            jitter: SimDuration::from_secs_f64(self.jitter_ms / 1e3),
            loss_under_partition: self.loss_under_partition,
            loss_prob: self.loss_prob,
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

impl TopologySpec {
    /// Check the parallel-execution knob against the topology shape.
    pub fn validate_parallel(&self) -> Result<(), String> {
        match self.parallel_sites {
            Some(0) => Err("topology.parallel_sites must be >= 1 when set".into()),
            Some(n) if n > 1 && self.sites.iter().any(|s| s.latency_ms <= 0.0) => {
                // Not an error — the harness falls back to sequential —
                // but surface it early so scenario authors notice.
                eprintln!(
                    "warning: topology.parallel_sites={n} with a zero-latency site: \
                     no conservative lookahead, running sequentially"
                );
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

/// One timed fault in a scenario's `chaos` block.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosEventSpec {
    /// When the fault fires, in seconds from the start of the run.
    pub at: f64,
    /// Fault kind: `"site-down"`, `"site-up"`, `"partition-start"`,
    /// `"partition-end"`, `"container-burst"`, or `"site-slowdown"`.
    pub kind: String,
    /// Target site name (must exist in the scenario's `topology`).
    pub site: String,
    /// Containers to crash (`"container-burst"` only; default 1).
    #[serde(default = "one_u32")]
    pub count: u32,
    /// Service-speed factor (`"site-slowdown"` only): 0.5 = half speed,
    /// services take twice as long; 1.0 (the default) restores nominal
    /// speed, i.e. the brown-out's recovery event.
    #[serde(default = "one")]
    pub factor: f64,
}

/// The optional `chaos` block: timed faults plus stochastic fault
/// processes injected into a federated run. Requires a `topology`
/// block; every fault is drawn from labelled deterministic RNG streams,
/// so a chaos run is exactly reproducible under its seed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosSpec {
    /// Optional profile name (labels `lass-sweep` rows).
    #[serde(default)]
    pub name: Option<String>,
    /// Explicit timed faults.
    #[serde(default)]
    pub events: Vec<ChaosEventSpec>,
    /// Mean time between stochastic site crashes, per site (exponential;
    /// omit to disable).
    #[serde(default)]
    pub site_mtbf_secs: Option<f64>,
    /// Mean time to recover a crashed site (default 30 s).
    #[serde(default = "thirty")]
    pub site_mttr_secs: f64,
    /// Mean time between stochastic router↔site partitions, per site
    /// (exponential; omit to disable).
    #[serde(default)]
    pub partition_mtbf_secs: Option<f64>,
    /// Mean time for a partition to heal (default 15 s).
    #[serde(default = "fifteen")]
    pub partition_mttr_secs: f64,
    /// Mean time between stochastic container-crash bursts (global; each
    /// burst hits one uniformly-drawn site; omit to disable).
    #[serde(default)]
    pub burst_mtbf_secs: Option<f64>,
    /// Containers crashed per stochastic burst (default 1).
    #[serde(default = "one_u32")]
    pub burst_size: u32,
    /// Extra latency (milliseconds) added to every migrated request's
    /// re-delivery, on top of the destination site's inbound hop.
    #[serde(default)]
    pub migration_penalty_ms: f64,
}

fn one_u32() -> u32 {
    1
}
fn thirty() -> f64 {
    30.0
}
fn fifteen() -> f64 {
    15.0
}

impl ChaosSpec {
    /// The profile label used in sweep tables (`name` or a digest of the
    /// knobs).
    pub fn label(&self) -> String {
        if let Some(name) = &self.name {
            return name.clone();
        }
        let mut parts = Vec::new();
        if !self.events.is_empty() {
            parts.push(format!("{}ev", self.events.len()));
        }
        if let Some(m) = self.site_mtbf_secs {
            parts.push(format!("crash{m}"));
        }
        if let Some(m) = self.partition_mtbf_secs {
            parts.push(format!("part{m}"));
        }
        if let Some(m) = self.burst_mtbf_secs {
            parts.push(format!("burst{m}"));
        }
        if parts.is_empty() {
            "none".into()
        } else {
            parts.join("+")
        }
    }

    /// Resolve site names against the topology and build the simulator's
    /// [`ChaosConfig`].
    pub fn to_config(&self, topology: &TopologySpec) -> Result<ChaosConfig, String> {
        let site_index = |name: &str| -> Result<u32, String> {
            topology
                .sites
                .iter()
                .position(|s| s.name == name)
                .map(|i| i as u32)
                .ok_or_else(|| format!("chaos event targets unknown site {name:?}"))
        };
        let mut events = Vec::with_capacity(self.events.len());
        for ev in &self.events {
            let site = site_index(&ev.site)?;
            let fault = match ev.kind.as_str() {
                "site-down" | "site_down" => Fault::SiteDown { site },
                "site-up" | "site_up" => Fault::SiteUp { site },
                "partition-start" | "partition_start" => Fault::PartitionStart { site },
                "partition-end" | "partition_end" => Fault::PartitionEnd { site },
                "container-burst" | "container_burst" => Fault::ContainerBurst {
                    site,
                    count: ev.count,
                },
                "site-slowdown" | "site_slowdown" => {
                    if !(ev.factor.is_finite() && ev.factor > 0.0) {
                        return Err(format!(
                            "site-slowdown factor must be finite and > 0, got {}",
                            ev.factor
                        ));
                    }
                    Fault::SiteSlowdown {
                        site,
                        permille: (ev.factor * 1000.0).round() as u32,
                    }
                }
                other => {
                    return Err(format!(
                        "unknown chaos fault kind {other:?} (expected \"site-down\", \
                         \"site-up\", \"partition-start\", \"partition-end\", \
                         \"container-burst\", or \"site-slowdown\")"
                    ))
                }
            };
            events.push((ev.at, fault));
        }
        let cfg = ChaosConfig {
            events,
            site_mtbf_secs: self.site_mtbf_secs,
            site_mttr_secs: self.site_mttr_secs,
            partition_mtbf_secs: self.partition_mtbf_secs,
            partition_mttr_secs: self.partition_mttr_secs,
            burst_mtbf_secs: self.burst_mtbf_secs,
            burst_size: self.burst_size,
            migration_penalty_secs: self.migration_penalty_ms / 1e3,
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

/// The result of a scenario run: which report shape depends on the policy
/// and on whether a `topology` block is present.
#[derive(Debug, Serialize)]
pub enum ScenarioReport {
    /// Report from the LaSS, static round-robin, or knative policies.
    Lass(SimReport),
    /// Report from the OpenWhisk baseline policy.
    OpenWhisk(OwReport),
    /// Report from a federated (multi-site) run.
    Federated(FederatedSimReport),
}

/// A function entry: either a catalog name or a custom spec.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(untagged)]
pub enum FunctionRef {
    /// One of the Table 1 functions by name (`"mobilenet_v2"`,
    /// `"squeezenet"`, …; `"micro_benchmark:<ms>"` for the configurable
    /// micro-benchmark).
    Catalog(String),
    /// A fully custom function spec.
    Custom(FunctionSpec),
}

impl FunctionRef {
    /// Materialize the spec.
    pub fn resolve(&self) -> Result<FunctionSpec, String> {
        match self {
            FunctionRef::Custom(spec) => Ok(spec.clone()),
            FunctionRef::Catalog(name) => {
                if let Some(ms) = name.strip_prefix("micro_benchmark:") {
                    let ms: f64 = ms
                        .parse()
                        .map_err(|_| format!("bad micro_benchmark service time: {name}"))?;
                    return Ok(micro_benchmark(ms / 1e3));
                }
                match name.as_str() {
                    "micro_benchmark" => Ok(micro_benchmark(0.1)),
                    "mobilenet_v2" => Ok(mobilenet_v2()),
                    "shufflenet_v2" => Ok(shufflenet_v2()),
                    "squeezenet" => Ok(squeezenet()),
                    "binary_alert" => Ok(binary_alert()),
                    "geofence" => Ok(geofence()),
                    "image_resizer" => Ok(image_resizer()),
                    other => Err(format!("unknown catalog function: {other}")),
                }
            }
        }
    }
}

/// One deployed function in a scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FunctionEntry {
    /// The function (catalog name or custom spec).
    pub function: FunctionRef,
    /// SLO deadline in milliseconds (waiting time).
    pub slo_ms: f64,
    /// Workload specification.
    pub workload: WorkloadSpec,
    /// Weight within the user (default 1).
    #[serde(default = "one")]
    pub weight: f64,
    /// Owning user id (default 0).
    #[serde(default)]
    pub user: u32,
    /// The user's weight (default 1; the last entry per user wins).
    #[serde(default = "one")]
    pub user_weight: f64,
    /// Containers provisioned warm at t = 0 (default 0).
    #[serde(default)]
    pub initial_containers: u32,
    /// Workload class override (`"compute"`, `"memory"`, or `"io"`):
    /// shapes the container demand vector. Omit to keep the resolved
    /// spec's own class (catalog functions default to compute, which
    /// reserves cpu and memory only — the legacy behavior).
    #[serde(default)]
    pub class: Option<WorkloadClass>,
}

fn one() -> f64 {
    1.0
}

/// A complete simulation scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// RNG seed (default 42).
    #[serde(default = "default_seed")]
    pub seed: u64,
    /// Which scheduler to run (default: the LaSS controller).
    #[serde(default)]
    pub policy: ScenarioPolicy,
    /// Cluster shape (default: the paper's 3×4-vCPU testbed).
    #[serde(default)]
    pub cluster: ClusterSpec,
    /// Controller configuration (default: the paper's settings).
    #[serde(default)]
    pub config: LassConfig,
    /// Deployed functions.
    pub functions: Vec<FunctionEntry>,
    /// Optional duration override in seconds (default: longest workload).
    #[serde(default)]
    pub duration_secs: Option<f64>,
    /// Optional federated topology; when present the single-cluster
    /// `cluster` field is ignored and the policy runs once per site.
    #[serde(default)]
    pub topology: Option<TopologySpec>,
    /// Optional fault injection (requires `topology`): timed site
    /// crashes / partitions / container bursts plus stochastic fault
    /// processes, with cross-site migration of a dead site's requests.
    #[serde(default)]
    pub chaos: Option<ChaosSpec>,
}

fn default_seed() -> u64 {
    42
}

impl Scenario {
    /// Parse from JSON.
    pub fn from_json(text: &str) -> Result<Scenario, String> {
        serde_json::from_str(text).map_err(|e| format!("scenario parse error: {e}"))
    }

    /// Build and run the simulation under the scenario's policy.
    ///
    /// Kept for callers that expect a [`SimReport`]; the `"openwhisk"`
    /// policy and federated topologies produce different report shapes
    /// and are only reachable via [`Scenario::run_report`].
    pub fn run(&self) -> Result<SimReport, String> {
        match self.run_report()? {
            ScenarioReport::Lass(report) => Ok(report),
            ScenarioReport::OpenWhisk(_) => {
                Err("the openwhisk policy produces an OwReport; use Scenario::run_report".into())
            }
            ScenarioReport::Federated(_) => Err(
                "a federated topology produces a FederatedSimReport; use Scenario::run_report"
                    .into(),
            ),
        }
    }

    fn build_cluster(&self) -> Cluster {
        self.cluster.build()
    }

    fn build_topology(&self, spec: &TopologySpec) -> Result<Topology, String> {
        let mut topology = Topology::new();
        for site in &spec.sites {
            site.cluster
                .validate()
                .map_err(|e| format!("site {:?}: {e}", site.name))?;
            topology.add_site(
                site.name.clone(),
                site.cluster.build(),
                site.latency_ms / 1e3,
            );
        }
        topology.validate()?;
        Ok(topology)
    }

    /// Run a scenario with a `topology` block through the federated
    /// harness.
    fn run_federated(&self, spec: &TopologySpec) -> Result<FederatedSimReport, String> {
        let site_policy = match self.policy {
            ScenarioPolicy::Lass => SitePolicyKind::Lass,
            ScenarioPolicy::StaticRr => SitePolicyKind::StaticRr,
            ScenarioPolicy::Knative => SitePolicyKind::Knative,
            ScenarioPolicy::OpenWhisk => {
                return Err(
                    "the openwhisk policy cannot run over a topology (its report shape is \
                     per-invoker, not per-site); use \"lass\", \"static-rr\", or \"knative\""
                        .into(),
                )
            }
        };
        spec.validate_parallel()?;
        let topology = self.build_topology(spec)?;
        let mut sim = FederatedSimulation::new(self.config.clone(), topology, self.seed);
        sim.set_router(spec.router)
            .set_router_config(spec.router_config)
            .set_telemetry(spec.telemetry.to_config()?)
            .set_hedge(spec.hedge)
            .set_policy(site_policy)
            .set_parallel(spec.parallel_sites);
        if let Some(chaos) = &self.chaos {
            sim.set_chaos(chaos.to_config(spec)?);
        }
        for setup in self.build_setups()? {
            sim.add_function(setup);
        }
        sim.run(self.duration_secs)
    }

    fn build_setups(&self) -> Result<Vec<FunctionSetup>, String> {
        self.functions
            .iter()
            .map(|entry| {
                let mut spec = entry.function.resolve()?;
                if let Some(class) = entry.class {
                    spec.class = class;
                }
                entry
                    .workload
                    .validate()
                    .map_err(|e| format!("function {:?}: {e}", spec.name))?;
                let mut setup =
                    FunctionSetup::new(spec, entry.slo_ms / 1e3, entry.workload.clone());
                setup.weight = entry.weight;
                setup.user = UserId(entry.user);
                setup.user_weight = entry.user_weight;
                setup.initial_containers = entry.initial_containers;
                Ok(setup)
            })
            .collect()
    }

    /// Build and run the simulation, returning whichever report shape the
    /// scenario's policy produces.
    pub fn run_report(&self) -> Result<ScenarioReport, String> {
        if self.functions.is_empty() {
            return Err("scenario has no functions".into());
        }
        self.config.validate()?;
        if let Some(spec) = &self.topology {
            return self.run_federated(spec).map(ScenarioReport::Federated);
        }
        if self.chaos.is_some() {
            return Err(
                "a \"chaos\" block requires a \"topology\" block (faults target topology sites)"
                    .into(),
            );
        }
        self.cluster.validate()?;
        match self.policy {
            ScenarioPolicy::Lass => {
                let mut sim = Simulation::new(self.config.clone(), self.build_cluster(), self.seed);
                for setup in self.build_setups()? {
                    sim.add_function(setup);
                }
                Ok(ScenarioReport::Lass(sim.run(self.duration_secs)))
            }
            ScenarioPolicy::StaticRr => {
                let mut sim = StaticRrSimulation::new(self.build_cluster(), self.seed);
                for setup in self.build_setups()? {
                    sim.add_function(setup);
                }
                Ok(ScenarioReport::Lass(sim.run(self.duration_secs)))
            }
            ScenarioPolicy::Knative => {
                let mut sim =
                    KnativeSimulation::new(self.config.clone(), self.build_cluster(), self.seed);
                for setup in self.build_setups()? {
                    sim.add_function(setup);
                }
                Ok(ScenarioReport::Lass(sim.run(self.duration_secs)))
            }
            ScenarioPolicy::OpenWhisk => {
                let mut sim = OwSimulation::new(OwConfig {
                    invokers: self.cluster.nodes,
                    mem_per_invoker: MemMib(self.cluster.mem_mib),
                    cpu_per_invoker: CpuMilli(self.cluster.cpu_milli),
                    seed: self.seed,
                    ..OwConfig::default()
                });
                for setup in self.build_setups()? {
                    sim.add_function(OwFunctionSetup {
                        spec: setup.spec,
                        workload: setup.workload,
                        slo_deadline: setup.slo_deadline,
                    });
                }
                Ok(ScenarioReport::OpenWhisk(sim.run(self.duration_secs)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = r#"{
        "seed": 7,
        "cluster": { "nodes": 3, "cpu_milli": 4000, "mem_mib": 16384 },
        "functions": [
            {
                "function": "micro_benchmark:100",
                "slo_ms": 100,
                "workload": { "Static": { "rate": 15.0, "duration": 60.0 } },
                "initial_containers": 2
            },
            {
                "function": "squeezenet",
                "slo_ms": 100,
                "user": 1,
                "user_weight": 2.0,
                "workload": { "Steps": { "steps": [[0.0, 0.0], [30.0, 10.0]], "duration": 60.0 } }
            }
        ]
    }"#;

    #[test]
    fn demo_scenario_parses_and_runs() {
        let sc = Scenario::from_json(DEMO).expect("valid scenario");
        assert_eq!(sc.seed, 7);
        assert_eq!(sc.functions.len(), 2);
        let report = sc.run().expect("runs");
        assert!(report.per_fn[&0].completed > 500);
        assert!(report.per_fn[&1].completed > 100);
    }

    #[test]
    fn catalog_names_resolve() {
        for name in [
            "micro_benchmark",
            "mobilenet_v2",
            "shufflenet_v2",
            "squeezenet",
            "binary_alert",
            "geofence",
            "image_resizer",
        ] {
            assert!(
                FunctionRef::Catalog(name.into()).resolve().is_ok(),
                "{name}"
            );
        }
        assert!(FunctionRef::Catalog("nope".into()).resolve().is_err());
        let mb = FunctionRef::Catalog("micro_benchmark:250".into())
            .resolve()
            .unwrap();
        assert!((mb.service.base_time - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_scenario_rejected() {
        let sc = Scenario {
            seed: 1,
            policy: ScenarioPolicy::default(),
            cluster: ClusterSpec::default(),
            config: LassConfig::default(),
            functions: vec![],
            duration_secs: None,
            topology: None,
            chaos: None,
        };
        assert!(sc.run().is_err());
    }

    #[test]
    fn static_rr_policy_runs_from_json() {
        let text = r#"{
            "policy": "static-rr",
            "functions": [
                {
                    "function": "micro_benchmark:100",
                    "slo_ms": 100,
                    "workload": { "Static": { "rate": 10.0, "duration": 60.0 } },
                    "initial_containers": 3
                }
            ]
        }"#;
        let sc = Scenario::from_json(text).expect("valid scenario");
        assert_eq!(sc.policy, ScenarioPolicy::StaticRr);
        let report = sc.run().expect("runs");
        let f = &report.per_fn[&0];
        assert!(f.completed > 400, "completed={}", f.completed);
        // Static policy never plans epochs.
        assert_eq!(report.epochs, 0);
    }

    #[test]
    fn openwhisk_policy_runs_from_json() {
        let text = r#"{
            "policy": "openwhisk",
            "functions": [
                {
                    "function": "binary_alert",
                    "slo_ms": 100,
                    "workload": { "Static": { "rate": 10.0, "duration": 60.0 } }
                }
            ]
        }"#;
        let sc = Scenario::from_json(text).expect("valid scenario");
        let ScenarioReport::OpenWhisk(report) = sc.run_report().expect("runs") else {
            panic!("expected an OpenWhisk report");
        };
        assert!(report.per_fn[&0].completed > 400);
        assert!(report.failures.is_empty());
        // run() refuses the mismatched report shape.
        assert!(sc.run().is_err());
    }

    #[test]
    fn policy_strings_parse_and_roundtrip() {
        for (text, want) in [
            ("\"lass\"", ScenarioPolicy::Lass),
            ("\"static-rr\"", ScenarioPolicy::StaticRr),
            ("\"static\"", ScenarioPolicy::StaticRr),
            ("\"knative\"", ScenarioPolicy::Knative),
            ("\"openwhisk\"", ScenarioPolicy::OpenWhisk),
        ] {
            let got: ScenarioPolicy = serde_json::from_str(text).expect("parses");
            assert_eq!(got, want);
        }
        assert!(serde_json::from_str::<ScenarioPolicy>("\"fifo\"").is_err());
        let json = serde_json::to_string(&ScenarioPolicy::StaticRr).unwrap();
        assert_eq!(json, "\"static-rr\"");
    }

    #[test]
    fn knative_policy_runs_from_json() {
        let text = r#"{
            "policy": "knative",
            "config": { "scaler": { "ConcurrencyTarget": { "target": 2.0 } } },
            "functions": [
                {
                    "function": "micro_benchmark:100",
                    "slo_ms": 100,
                    "workload": { "Static": { "rate": 20.0, "duration": 90.0 } }
                }
            ]
        }"#;
        let sc = Scenario::from_json(text).expect("valid scenario");
        assert_eq!(sc.policy, ScenarioPolicy::Knative);
        let report = sc.run().expect("runs");
        let f = &report.per_fn[&0];
        assert!(f.completed > 1500, "completed={}", f.completed);
        assert!(report.epochs > 0);
    }

    const FEDERATED: &str = r#"{
        "seed": 9,
        "policy": "lass",
        "topology": {
            "router": "latency-aware",
            "sites": [
                { "name": "edge",  "cluster": { "nodes": 1, "cpu_milli": 4000, "mem_mib": 16384 }, "latency_ms": 2 },
                { "name": "cloud", "cluster": { "nodes": 6, "cpu_milli": 4000, "mem_mib": 16384 }, "latency_ms": 40 }
            ]
        },
        "functions": [
            {
                "function": "micro_benchmark:100",
                "slo_ms": 150,
                "workload": { "Static": { "rate": 60.0, "duration": 90.0 } },
                "initial_containers": 1
            }
        ]
    }"#;

    #[test]
    fn federated_scenario_parses_and_runs() {
        let sc = Scenario::from_json(FEDERATED).expect("valid scenario");
        let spec = sc.topology.as_ref().expect("topology block");
        assert_eq!(spec.router, lass_simcore::RouterKind::LatencyAware);
        assert_eq!(spec.sites.len(), 2);
        let ScenarioReport::Federated(report) = sc.run_report().expect("runs") else {
            panic!("expected a federated report");
        };
        assert_eq!(report.per_site.len(), 2);
        assert_eq!(report.router, "latency-aware");
        let routed: usize = report.per_site.iter().map(|s| s.routed).sum();
        assert_eq!(routed, report.aggregate_per_fn[0].arrivals);
        // run() refuses the mismatched report shape.
        assert!(sc.run().is_err());
    }

    #[test]
    fn federated_scenario_round_trips_through_json() {
        let sc = Scenario::from_json(FEDERATED).expect("valid scenario");
        let json = serde_json::to_string(&sc).unwrap();
        let back = Scenario::from_json(&json).expect("round-trips");
        let spec = back.topology.expect("topology survives");
        assert_eq!(spec.sites[1].name, "cloud");
        assert_eq!(spec.sites[1].latency_ms, 40.0);
    }

    #[test]
    fn openwhisk_rejects_topology() {
        let text = r#"{
            "policy": "openwhisk",
            "topology": { "sites": [ { "name": "a" } ] },
            "functions": [
                {
                    "function": "binary_alert",
                    "slo_ms": 100,
                    "workload": { "Static": { "rate": 5.0, "duration": 30.0 } }
                }
            ]
        }"#;
        let sc = Scenario::from_json(text).expect("parses");
        assert!(sc.run_report().is_err());
    }

    const CHAOS: &str = r#"{
        "seed": 13,
        "policy": "lass",
        "topology": {
            "router": "least-loaded",
            "sites": [
                { "name": "a", "cluster": { "nodes": 2, "cpu_milli": 4000, "mem_mib": 16384 }, "latency_ms": 2 },
                { "name": "b", "cluster": { "nodes": 2, "cpu_milli": 4000, "mem_mib": 16384 }, "latency_ms": 10 }
            ]
        },
        "chaos": {
            "name": "crash-a",
            "migration_penalty_ms": 5,
            "events": [
                { "at": 30.0, "kind": "site-down", "site": "a" },
                { "at": 60.0, "kind": "site-up", "site": "a" },
                { "at": 70.0, "kind": "container-burst", "site": "b", "count": 2 }
            ]
        },
        "functions": [
            {
                "function": "micro_benchmark:100",
                "slo_ms": 150,
                "workload": { "Static": { "rate": 30.0, "duration": 90.0 } },
                "initial_containers": 2
            }
        ]
    }"#;

    #[test]
    fn chaos_scenario_parses_runs_and_migrates() {
        let sc = Scenario::from_json(CHAOS).expect("valid scenario");
        let chaos = sc.chaos.as_ref().expect("chaos block");
        assert_eq!(chaos.label(), "crash-a");
        assert_eq!(chaos.events.len(), 3);
        let ScenarioReport::Federated(rep) = sc.run_report().expect("runs") else {
            panic!("expected a federated report");
        };
        let a = &rep.per_site[0];
        assert!(a.migrated > 0, "site a's orphans must migrate");
        assert!((a.downtime_secs - 30.0).abs() < 1e-6, "{}", a.downtime_secs);
        assert_eq!(rep.per_site[1].migrated_in, a.migrated);
        assert!(rep.per_site[1].chaos_crashes > 0, "burst must land on b");
        // Conservation at the engine aggregate.
        let agg = &rep.aggregate_per_fn[0];
        assert_eq!(
            agg.arrivals,
            agg.completed + agg.lost + agg.timeouts + rep.outstanding
        );
    }

    #[test]
    fn parallel_topology_runs_and_matches_itself() {
        let with_threads = |threads: &str| {
            FEDERATED.replace(
                "\"router\": \"latency-aware\",",
                &format!("\"router\": \"latency-aware\", \"parallel_sites\": {threads},"),
            )
        };
        let run = |text: &str| {
            let sc = Scenario::from_json(text).expect("valid scenario");
            let ScenarioReport::Federated(rep) = sc.run_report().expect("runs") else {
                panic!("expected a federated report");
            };
            serde_json::to_string(&rep).unwrap()
        };
        let a = run(&with_threads("1"));
        let b = run(&with_threads("4"));
        assert_eq!(a, b, "parallel scenario diverged across thread counts");
    }

    #[test]
    fn parallel_sites_zero_is_rejected() {
        let text = FEDERATED.replace(
            "\"router\": \"latency-aware\",",
            "\"router\": \"latency-aware\", \"parallel_sites\": 0,",
        );
        let sc = Scenario::from_json(&text).expect("parses");
        let err = sc.run_report().unwrap_err();
        assert!(err.contains("parallel_sites"), "{err}");
    }

    #[test]
    fn zero_latency_parallel_topology_falls_back_to_sequential() {
        // Site latency 0 ms → no conservative lookahead; the run must
        // complete (sequential fallback) and match the plain sequential
        // report exactly.
        let base = FEDERATED.replace("\"latency_ms\": 2", "\"latency_ms\": 0");
        let par = base.replace(
            "\"router\": \"latency-aware\",",
            "\"router\": \"latency-aware\", \"parallel_sites\": 4,",
        );
        let run = |text: &str| {
            let sc = Scenario::from_json(text).expect("valid scenario");
            let ScenarioReport::Federated(rep) = sc.run_report().expect("runs") else {
                panic!("expected a federated report");
            };
            serde_json::to_string(&rep).unwrap()
        };
        assert_eq!(run(&base), run(&par), "fallback must be the sequential run");
    }

    #[test]
    fn chaos_scenario_round_trips_through_json() {
        let sc = Scenario::from_json(CHAOS).expect("valid scenario");
        let json = serde_json::to_string(&sc).unwrap();
        let back = Scenario::from_json(&json).expect("round-trips");
        let chaos = back.chaos.expect("chaos survives");
        assert_eq!(chaos.events[0].kind, "site-down");
        assert_eq!(chaos.events[2].count, 2);
        assert_eq!(chaos.migration_penalty_ms, 5.0);
    }

    #[test]
    fn chaos_without_topology_is_rejected() {
        let text = r#"{
            "chaos": { "events": [ { "at": 10.0, "kind": "site-down", "site": "a" } ] },
            "functions": [
                {
                    "function": "binary_alert",
                    "slo_ms": 100,
                    "workload": { "Static": { "rate": 5.0, "duration": 30.0 } }
                }
            ]
        }"#;
        let sc = Scenario::from_json(text).expect("parses");
        let err = sc.run_report().unwrap_err();
        assert!(err.contains("topology"), "{err}");
    }

    #[test]
    fn chaos_bad_site_and_kind_are_rejected() {
        let mut sc = Scenario::from_json(CHAOS).expect("valid scenario");
        sc.chaos.as_mut().unwrap().events[0].site = "nope".into();
        assert!(sc.run_report().unwrap_err().contains("unknown site"));
        let mut sc = Scenario::from_json(CHAOS).expect("valid scenario");
        sc.chaos.as_mut().unwrap().events[0].kind = "meteor-strike".into();
        assert!(sc.run_report().unwrap_err().contains("fault kind"));
    }

    #[test]
    fn chaos_labels_summarize_profiles() {
        let spec: ChaosSpec = serde_json::from_str(r#"{ "site_mtbf_secs": 120.0 }"#).unwrap();
        assert_eq!(spec.label(), "crash120");
        let spec: ChaosSpec = serde_json::from_str("{}").unwrap();
        assert_eq!(spec.label(), "none");
    }

    #[test]
    fn custom_function_round_trips_through_json() {
        let spec = micro_benchmark(0.2);
        let entry = FunctionEntry {
            function: FunctionRef::Custom(spec),
            slo_ms: 150.0,
            workload: WorkloadSpec::Static {
                rate: 5.0,
                duration: 30.0,
            },
            weight: 1.0,
            user: 0,
            user_weight: 1.0,
            initial_containers: 1,
            class: None,
        };
        let json = serde_json::to_string(&entry).unwrap();
        let back: FunctionEntry = serde_json::from_str(&json).unwrap();
        assert!(back.function.resolve().is_ok());
    }
}
