//! Million-function trace replay: the workload harness behind the
//! `lass-replay` binary and the engine-throughput benchmark.
//!
//! The figure-repro simulations drive a handful of functions through the
//! full LaSS controller; this module instead stresses the *engine* — the
//! timer-wheel calendar, the arena request table, and the streaming
//! statistics — with hour-long traces for 10⁴–10⁶ distinct functions,
//! routed across a federated topology end-to-end.
//!
//! Two trace sources:
//!
//! * **Synthesis** (default): function popularity follows a Zipf law
//!   over the configured aggregate rate, and each function replays one
//!   of a small pool of temporal shapes built from the Azure-style
//!   [`synthesize`](lass_functions::synthesize) patterns. Shapes are
//!   shared behind `Arc`s ([`ScaledShapeTrace`]), so per-function
//!   arrival state is O(1) whatever the trace length.
//! * **CSV** (`csv` config): rows in the Azure Functions 2019 schema,
//!   loaded with [`parse_invocations_csv`](lass_functions::parse_invocations_csv)
//!   and windowed with [`sample_window`](lass_functions::sample_window).
//!
//! Function names are interned to dense ids through
//! [`FnInterner`](lass_cluster::FnInterner) — the engine, the federation
//! tallies, and the per-site policies all index flat vectors.
//!
//! Each site is a fixed-capacity FCFS multi-server ([`CapacityPolicy`]):
//! deliberately scheduler-light so the measured cost is the engine's hot
//! loop, not a controller. Capacity is planned from the offered load at
//! a configurable utilization, so the replay neither idles nor melts.

use lass_cluster::FnInterner;
use lass_functions::{parse_invocations_csv, sample_window, synthesize, TracePattern};
use lass_simcore::{
    run_federation_parallel, run_simulation, ArrivalProcess, ChaosConfig, ContainerChaos,
    EngineConfig, EngineOutcome, FedFunction, FederatedReport, Federation, FunctionEntry,
    HedgeConfig, PerMinuteTrace, PolicyCtx, ReqId, RouterKind, ScaledShapeTrace, SchedulerPolicy,
    SimDuration, SimRng, SimTime, SiteMeta,
};
use serde::Serialize;
use std::collections::VecDeque;
use std::sync::Arc;

/// Replay parameters. `Default` gives the CI smoke shape: 10³ functions,
/// 5 minutes, 2 sites, round-robin routing.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Number of distinct functions (synthesis mode; CSV mode caps the
    /// row count at this when non-zero).
    pub functions: usize,
    /// Simulated minutes to replay.
    pub minutes: usize,
    /// Master seed for shapes, arrivals, and service draws.
    pub seed: u64,
    /// Zipf popularity exponent `s` (rate of function `i` ∝ `(i+1)^-s`).
    pub zipf_exponent: f64,
    /// Aggregate offered load across all functions, req/s (synthesis
    /// mode; CSV mode takes rates from the trace).
    pub total_rps: f64,
    /// Number of federated sites.
    pub sites: usize,
    /// Front-end routing policy.
    pub router: RouterKind,
    /// Capacity-planning utilization target in (0, 1): total servers =
    /// offered erlangs / utilization.
    pub utilization: f64,
    /// SLO deadline (seconds) on the waiting time, for violation
    /// accounting.
    pub slo_deadline: f64,
    /// Path to an Azure-schema invocations CSV; `None` synthesizes.
    pub csv: Option<String>,
    /// First minute of the CSV window (e.g. 660 for 11:00).
    pub window_start: usize,
    /// Worker threads for the conservative-synchronization parallel
    /// executor; `None` runs the sequential engine. Needs `sites >= 2`
    /// and strictly positive inbound latency on every site (set
    /// `site_latency_ms`), otherwise the replay warns and falls back to
    /// the sequential engine.
    pub parallel: Option<usize>,
    /// Uniform router→site latency in milliseconds for every site;
    /// `None` keeps the legacy ladder (site `i` pays `2·i` ms, so site 0
    /// is the zero-latency local pool).
    pub site_latency_ms: Option<f64>,
    /// Request hedging: race extra copies of each request across sites,
    /// first response wins, cancels chase the losers at site latency.
    /// `None` (the default) keeps the single-dispatch engine
    /// byte-identical.
    pub hedge: Option<HedgeConfig>,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            functions: 1_000,
            minutes: 5,
            seed: 42,
            zipf_exponent: 1.1,
            total_rps: 1_000.0,
            sites: 2,
            router: RouterKind::RoundRobin,
            utilization: 0.7,
            slo_deadline: 0.1,
            csv: None,
            window_start: 0,
            parallel: None,
            site_latency_ms: None,
            hedge: None,
        }
    }
}

/// What one replay run produced, JSON-serializable for the binary and
/// the CI smoke check.
#[derive(Debug, Serialize)]
pub struct ReplaySummary {
    /// Distinct functions replayed.
    pub functions: usize,
    /// Simulated minutes.
    pub minutes: usize,
    /// Seed used.
    pub seed: u64,
    /// Sites in the topology.
    pub sites: usize,
    /// Worker threads the run actually used, as recorded by the engine
    /// itself (1 = sequential, including parallel requests that fell
    /// back; requests beyond the site count are clamped, and the clamp
    /// shows here rather than the requested figure).
    pub threads: usize,
    /// Router name.
    pub router: String,
    /// FCFS servers provisioned per site.
    pub servers_per_site: u32,
    /// Total arrivals.
    pub arrivals: usize,
    /// Completed requests.
    pub completed: usize,
    /// Requests lost (no routable site).
    pub lost: usize,
    /// Requests abandoned on a hard time limit (none in this harness).
    pub timeouts: usize,
    /// Requests still in flight when the drain ended.
    pub outstanding: usize,
    /// Whether every arrival is accounted for:
    /// `arrivals == completed + lost + timeouts + outstanding`.
    pub conserved: bool,
    /// Completion-weighted mean waiting time, milliseconds.
    pub mean_wait_ms: f64,
    /// Completion-weighted mean response time, milliseconds.
    pub mean_response_ms: f64,
    /// p95 waiting time of the busiest function, milliseconds.
    pub p95_wait_ms_top_fn: f64,
    /// Completions whose wait exceeded the SLO deadline.
    pub slo_violations: usize,
    /// Hedge clones dispatched (0 with hedging off).
    pub hedged: usize,
    /// Hedge clones cancelled after a sibling won the race.
    pub cancelled: usize,
    /// Clones whose site finished the work after the race was decided —
    /// the wasted-work cost of hedging.
    pub wasted_work: usize,
    /// Simulated duration, seconds (excluding drain).
    pub sim_duration_secs: f64,
    /// Wall-clock time of the engine run, seconds.
    pub wall_secs: f64,
    /// Simulated requests processed per wall-clock minute — the
    /// headline throughput number (`arrivals / wall_minutes`).
    pub sim_req_per_wall_min: f64,
}

/// Per-site FCFS multi-server policy: `servers` interchangeable slots,
/// one shared queue, exponential service at the function's mean rate.
/// No autoscaling and no per-container state — the cheapest scheduler
/// that still exercises the full request lifecycle, so replay
/// throughput measures the engine, not a controller.
pub struct CapacityPolicy {
    servers: u32,
    busy: u32,
    queue: VecDeque<ReqId>,
    /// Mean service time (seconds) per function, shared across sites.
    service_means: Arc<[f64]>,
    completed: usize,
}

/// The capacity policy's only event: a service slot finishing.
pub enum CapEv {
    /// Request `rid`, started at `started`, finished service.
    Done {
        /// The finished request.
        rid: ReqId,
        /// When its service began.
        started: SimTime,
    },
}

/// Per-site totals returned by [`CapacityPolicy::finish`].
#[derive(Debug, Serialize)]
pub struct CapacityReport {
    /// Requests this site completed.
    pub completed: usize,
}

impl CapacityPolicy {
    /// A site with `servers` slots drawing service times from
    /// `service_means` (indexed by dense function id).
    pub fn new(servers: u32, service_means: Arc<[f64]>) -> Self {
        assert!(servers > 0, "a site needs at least one server");
        Self {
            servers,
            busy: 0,
            queue: VecDeque::new(),
            service_means,
            completed: 0,
        }
    }

    fn start(&mut self, ctx: &mut impl PolicyCtx<CapEv>, rid: ReqId, fn_idx: u32, now: SimTime) {
        let mean = self.service_means[fn_idx as usize];
        let dur = ctx.service_rng(fn_idx).exp(1.0 / mean);
        self.busy += 1;
        ctx.schedule(
            now + SimDuration::from_secs_f64(dur),
            CapEv::Done { rid, started: now },
        );
    }
}

impl SchedulerPolicy for CapacityPolicy {
    type Event = CapEv;
    type Report = CapacityReport;

    fn on_start(&mut self, _ctx: &mut impl PolicyCtx<CapEv>) {}

    fn on_arrival(
        &mut self,
        ctx: &mut impl PolicyCtx<CapEv>,
        rid: ReqId,
        fn_idx: u32,
        now: SimTime,
    ) {
        if self.busy < self.servers {
            self.start(ctx, rid, fn_idx, now);
        } else {
            self.queue.push_back(rid);
        }
    }

    fn on_event(&mut self, ctx: &mut impl PolicyCtx<CapEv>, ev: CapEv, now: SimTime) {
        let CapEv::Done { rid, started } = ev;
        if ctx.complete(rid, started, now).is_some() {
            self.completed += 1;
        }
        self.busy -= 1;
        while self.busy < self.servers {
            let Some(next) = self.queue.pop_front() else {
                return;
            };
            // A request can leave the queue only by starting service, so
            // lookups fail only for requests retired upstream.
            let Some((fn_idx, _)) = ctx.request_info(next) else {
                continue;
            };
            self.start(ctx, next, fn_idx, now);
        }
    }

    fn finish(self, _outcome: EngineOutcome) -> CapacityReport {
        CapacityReport {
            completed: self.completed,
        }
    }
}

// No container fleet: nothing to crash, nothing warm to census. The
// default (zero) implementations are exactly right.
impl ContainerChaos for CapacityPolicy {}

/// One replayable workload: entries for the engine, per-function mean
/// service times, and the offered load in erlangs (for capacity
/// planning).
struct Workload {
    entries: Vec<FunctionEntry>,
    functions: Vec<FedFunction>,
    service_means: Arc<[f64]>,
    offered_erlangs: f64,
}

/// Deterministic per-function mean service time in `[10 ms, 100 ms)`,
/// spread by a Weyl-style multiplicative hash so neighbours differ.
fn service_mean(fn_idx: usize) -> f64 {
    let h = (fn_idx as u64).wrapping_mul(2_654_435_761) % 1_000;
    0.010 + 0.090 * (h as f64 / 1_000.0)
}

/// The pool of shared temporal shapes, each normalized to mean 1.0 so a
/// function's long-run average rate equals its Zipf scale.
fn shape_pool(seed: u64, minutes: usize) -> Vec<Arc<[f64]>> {
    let patterns: [(&str, TracePattern); 4] = [
        (
            "steady",
            TracePattern::Steady {
                mean_per_min: 600.0,
            },
        ),
        (
            "diurnal",
            TracePattern::Diurnal {
                mean_per_min: 600.0,
                amplitude: 0.5,
                period_min: 60.0,
            },
        ),
        (
            "sporadic",
            TracePattern::Sporadic {
                burst_mean_per_min: 1_200.0,
                mean_burst_min: 6.0,
                mean_idle_min: 6.0,
            },
        ),
        (
            "spiky",
            TracePattern::Spiky {
                base_per_min: 600.0,
                spike_prob: 0.05,
                spike_factor: 4.0,
            },
        ),
    ];
    patterns
        .iter()
        .map(|(label, pattern)| {
            let mut rng = SimRng::from_seed_label(seed, &format!("replay:shape:{label}"));
            let counts = synthesize(*pattern, minutes, &mut rng);
            let mean = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
            let shape: Vec<f64> = if mean > 0.0 {
                counts.iter().map(|&c| c as f64 / mean).collect()
            } else {
                vec![1.0; counts.len()]
            };
            Arc::from(shape.into_boxed_slice())
        })
        .collect()
}

fn synthesize_workload(cfg: &ReplayConfig) -> Result<Workload, String> {
    if cfg.functions == 0 {
        return Err("need at least one function to synthesize".into());
    }
    let shapes = shape_pool(cfg.seed, cfg.minutes);
    // Zipf popularity: rate of function i ∝ (i+1)^-s, normalized to the
    // configured aggregate.
    let weights: Vec<f64> = (0..cfg.functions)
        .map(|i| (i as f64 + 1.0).powf(-cfg.zipf_exponent))
        .collect();
    let total_weight: f64 = weights.iter().sum();
    let mut interner = FnInterner::new();
    let mut entries = Vec::with_capacity(cfg.functions);
    let mut functions = Vec::with_capacity(cfg.functions);
    let mut means = Vec::with_capacity(cfg.functions);
    let mut offered = 0.0;
    for (i, w) in weights.iter().enumerate() {
        let name = format!("fn-{i:06}");
        let id = interner.intern(&name);
        debug_assert_eq!(id.0 as usize, i);
        let rate = cfg.total_rps * w / total_weight;
        let mean = service_mean(i);
        offered += rate * mean;
        means.push(mean);
        entries.push(FunctionEntry {
            name: name.clone(),
            slo_deadline: cfg.slo_deadline,
            process: Box::new(ScaledShapeTrace::new(
                shapes[i % shapes.len()].clone(),
                rate,
            )),
        });
        functions.push(FedFunction {
            name,
            slo_deadline: cfg.slo_deadline,
            demand: [0.0; 3],
        });
    }
    Ok(Workload {
        entries,
        functions,
        service_means: Arc::from(means.into_boxed_slice()),
        offered_erlangs: offered,
    })
}

fn csv_workload(cfg: &ReplayConfig, text: &str) -> Result<Workload, String> {
    let rows = parse_invocations_csv(text).map_err(|e| e.to_string())?;
    let mut interner = FnInterner::new();
    let mut entries = Vec::new();
    let mut functions = Vec::new();
    let mut means = Vec::new();
    let mut offered = 0.0;
    for row in &rows {
        if cfg.functions > 0 && interner.len() >= cfg.functions {
            break;
        }
        let before = interner.len();
        let id = interner.intern(&row.function);
        if interner.len() == before {
            continue; // duplicate function hash: first row wins
        }
        let counts = sample_window(row, cfg.window_start, cfg.minutes);
        let rate = counts.iter().sum::<u64>() as f64 / (cfg.minutes as f64 * 60.0);
        let mean = service_mean(id.0 as usize);
        offered += rate * mean;
        means.push(mean);
        entries.push(FunctionEntry {
            name: row.function.clone(),
            slo_deadline: cfg.slo_deadline,
            process: Box::new(PerMinuteTrace::new(&counts)) as Box<dyn ArrivalProcess + Send>,
        });
        functions.push(FedFunction {
            name: row.function.clone(),
            slo_deadline: cfg.slo_deadline,
            demand: [0.0; 3],
        });
    }
    if entries.is_empty() {
        return Err("trace contains no functions".into());
    }
    Ok(Workload {
        entries,
        functions,
        service_means: Arc::from(means.into_boxed_slice()),
        offered_erlangs: offered,
    })
}

/// Run one replay to completion and summarize it.
pub fn run_replay(cfg: &ReplayConfig) -> Result<ReplaySummary, String> {
    if cfg.minutes == 0 {
        return Err("need at least one simulated minute".into());
    }
    if cfg.sites == 0 {
        return Err("need at least one site".into());
    }
    if !(cfg.utilization > 0.0 && cfg.utilization < 1.0) {
        return Err(format!(
            "utilization must be in (0, 1), got {}",
            cfg.utilization
        ));
    }
    let workload = match &cfg.csv {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            csv_workload(cfg, &text)?
        }
        None => synthesize_workload(cfg)?,
    };
    let fn_count = workload.entries.len();
    // Capacity plan: enough interchangeable servers to keep utilization
    // at the target, split evenly (the +1 per site absorbs rounding and
    // burst shapes).
    let total_servers = (workload.offered_erlangs / cfg.utilization).ceil() as u32;
    let servers_per_site = (total_servers / cfg.sites as u32).max(1) + 1;
    let site_latency = |i: usize| match cfg.site_latency_ms {
        Some(ms) => SimDuration::from_secs_f64(ms / 1e3),
        // Legacy ladder: site 0 is the zero-latency local pool; remote
        // pools pay a small inbound hop (more calendar traffic).
        None => SimDuration::from_millis(2 * i as u64),
    };
    // Parallel execution needs conservative lookahead: at least two
    // sites, every inbound hop strictly positive.
    let threads = match cfg.parallel {
        Some(0) => return Err("parallel must be >= 1 when set".into()),
        Some(n) if cfg.sites < 2 => {
            eprintln!("warning: parallel={n} ignored — single-site replay runs sequentially");
            None
        }
        Some(n) if (0..cfg.sites).any(|i| site_latency(i).0 == 0) => {
            eprintln!(
                "warning: parallel={n} ignored — zero-latency site leaves no lookahead \
                 (set --site-latency-ms > 0); running sequentially"
            );
            None
        }
        other => other,
    };
    let sites: Vec<(SiteMeta, CapacityPolicy)> = (0..cfg.sites)
        .map(|i| {
            (
                SiteMeta {
                    name: format!("site{i}"),
                    latency: site_latency(i),
                    capacity_hint: f64::from(servers_per_site),
                },
                CapacityPolicy::new(servers_per_site, workload.service_means.clone()),
            )
        })
        .collect();
    let mut federation =
        Federation::new(sites, cfg.router.build(), &workload.functions).with_streaming_stats();
    if let Some(h) = cfg.hedge {
        federation.set_hedge(h);
    }
    let engine_cfg = EngineConfig {
        seed: cfg.seed,
        rng_label_prefix: String::new(),
        duration_secs: cfg.minutes as f64 * 60.0,
        drain_secs: 120.0,
        stream_stats: true,
        parallel_sites: threads,
    };
    let wall_start = std::time::Instant::now();
    let mut report: FederatedReport<CapacityReport> = match threads {
        Some(_) => run_federation_parallel(
            engine_cfg,
            workload.entries,
            federation,
            ChaosConfig::default(),
            cfg.seed,
        ),
        None => run_simulation(engine_cfg, workload.entries, federation),
    };
    let wall_secs = wall_start.elapsed().as_secs_f64();

    // Aggregate the engine's cross-site per-function statistics.
    let (mut arrivals, mut completed, mut lost, mut timeouts, mut slo_violations) =
        (0usize, 0usize, 0usize, 0usize, 0usize);
    let (mut hedged, mut cancelled) = (0usize, 0usize);
    let (mut wait_sum, mut response_sum) = (0.0f64, 0.0f64);
    let mut top: (usize, f64) = (0, 0.0); // (arrivals, p95 wait)
    for f in &mut report.aggregate_per_fn {
        arrivals += f.arrivals;
        completed += f.completed;
        lost += f.lost;
        timeouts += f.timeouts;
        slo_violations += f.slo_violations;
        hedged += f.hedged;
        cancelled += f.cancelled;
        if let Some(mean) = f.wait.mean() {
            wait_sum += mean * f.wait.count() as f64;
        }
        if let Some(mean) = f.response.mean() {
            response_sum += mean * f.response.count() as f64;
        }
        if f.arrivals > top.0 {
            top = (f.arrivals, f.wait.percentile(0.95).unwrap_or(0.0));
        }
    }
    let conserved = arrivals == completed + lost + timeouts + report.outstanding;
    let wall_minutes = wall_secs / 60.0;
    Ok(ReplaySummary {
        functions: fn_count,
        minutes: cfg.minutes,
        seed: cfg.seed,
        sites: cfg.sites,
        threads: report.threads,
        router: cfg.router.as_str().to_string(),
        servers_per_site,
        arrivals,
        completed,
        lost,
        timeouts,
        outstanding: report.outstanding,
        conserved,
        mean_wait_ms: if completed > 0 {
            wait_sum / completed as f64 * 1e3
        } else {
            0.0
        },
        mean_response_ms: if completed > 0 {
            response_sum / completed as f64 * 1e3
        } else {
            0.0
        },
        p95_wait_ms_top_fn: top.1 * 1e3,
        slo_violations,
        hedged,
        cancelled,
        wasted_work: report.wasted_work,
        sim_duration_secs: report.duration,
        wall_secs,
        sim_req_per_wall_min: if wall_minutes > 0.0 {
            arrivals as f64 / wall_minutes
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ReplayConfig {
        ReplayConfig {
            functions: 200,
            minutes: 2,
            seed: 7,
            total_rps: 100.0,
            ..ReplayConfig::default()
        }
    }

    #[test]
    fn replay_conserves_and_summarizes() {
        let summary = run_replay(&quick_cfg()).unwrap();
        assert_eq!(summary.functions, 200);
        assert!(summary.arrivals > 5_000, "arrivals={}", summary.arrivals);
        assert!(summary.conserved, "{summary:?}");
        assert!(summary.completed > 0);
        assert_eq!(summary.lost, 0);
        assert!(summary.mean_wait_ms >= 0.0);
        assert!(summary.mean_response_ms >= summary.mean_wait_ms);
        // The summary round-trips through JSON (the CI smoke contract).
        let json = serde_json::to_string(&summary).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(
            obj.get("arrivals").and_then(|a| a.as_f64()),
            Some(summary.arrivals as f64)
        );
        assert_eq!(obj.get("conserved"), Some(&serde_json::Value::Bool(true)));
    }

    #[test]
    fn replay_is_deterministic_per_seed() {
        let a = run_replay(&quick_cfg()).unwrap();
        let b = run_replay(&quick_cfg()).unwrap();
        assert_eq!(a.arrivals, b.arrivals);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.outstanding, b.outstanding);
        assert_eq!(a.mean_wait_ms, b.mean_wait_ms);
        let mut other = quick_cfg();
        other.seed = 8;
        let c = run_replay(&other).unwrap();
        assert_ne!(a.arrivals, c.arrivals);
    }

    #[test]
    fn parallel_replay_conserves_and_is_thread_count_invariant() {
        let cfg = |threads: usize| ReplayConfig {
            sites: 4,
            parallel: Some(threads),
            site_latency_ms: Some(5.0),
            ..quick_cfg()
        };
        let a = run_replay(&cfg(1)).unwrap();
        let b = run_replay(&cfg(4)).unwrap();
        assert_eq!(a.threads, 1);
        assert_eq!(b.threads, 4);
        assert!(a.conserved, "{a:?}");
        assert!(a.arrivals > 5_000);
        assert_eq!(a.arrivals, b.arrivals);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.outstanding, b.outstanding);
        assert_eq!(a.mean_wait_ms, b.mean_wait_ms);
        assert_eq!(a.p95_wait_ms_top_fn, b.p95_wait_ms_top_fn);
        // Requesting more workers than sites is clamped by the engine,
        // and the summary reports the clamp, not the request.
        let c = run_replay(&cfg(8)).unwrap();
        assert_eq!(c.threads, 4);
        assert_eq!(a.arrivals, c.arrivals);
        assert_eq!(a.mean_wait_ms, c.mean_wait_ms);
    }

    #[test]
    fn parallel_replay_with_zero_latency_falls_back() {
        // Legacy ladder gives site 0 zero latency → sequential fallback,
        // bit-identical to the plain sequential replay.
        let seq = run_replay(&ReplayConfig {
            sites: 2,
            ..quick_cfg()
        })
        .unwrap();
        let fell_back = run_replay(&ReplayConfig {
            sites: 2,
            parallel: Some(4),
            ..quick_cfg()
        })
        .unwrap();
        assert_eq!(fell_back.threads, 1);
        assert_eq!(seq.arrivals, fell_back.arrivals);
        assert_eq!(seq.completed, fell_back.completed);
        assert_eq!(seq.mean_wait_ms, fell_back.mean_wait_ms);
        assert!(run_replay(&ReplayConfig {
            parallel: Some(0),
            ..quick_cfg()
        })
        .is_err());
    }

    #[test]
    fn csv_workload_interned_and_replayed() {
        let csv = "\
HashOwner,HashApp,HashFunction,Trigger,1,2,3,4,5
o1,a1,alpha,http,60,120,60,60,60
o1,a1,beta,timer,600,600,600,600,600
o1,a1,alpha,http,9,9,9,9,9
";
        let dir = std::env::temp_dir().join("lass-replay-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        std::fs::write(&path, csv).unwrap();
        let cfg = ReplayConfig {
            functions: 0, // no cap
            minutes: 5,
            seed: 3,
            sites: 1,
            csv: Some(path.to_string_lossy().into_owned()),
            ..ReplayConfig::default()
        };
        let summary = run_replay(&cfg).unwrap();
        // The duplicate "alpha" row is dropped by the interner.
        assert_eq!(summary.functions, 2);
        assert!(summary.conserved);
        // ~ (360 + 3000) arrivals over 5 minutes.
        assert!(
            (summary.arrivals as f64 - 3360.0).abs() < 400.0,
            "arrivals={}",
            summary.arrivals
        );
    }

    #[test]
    fn zipf_concentrates_load_on_head_functions() {
        let w = synthesize_workload(&ReplayConfig {
            functions: 100,
            minutes: 1,
            total_rps: 100.0,
            ..ReplayConfig::default()
        })
        .unwrap();
        assert_eq!(w.entries.len(), 100);
        assert!(w.offered_erlangs > 0.0);
        // Head function carries more than 10% of a 100-fn Zipf(1.1) load.
        let head = &w.entries[0];
        assert_eq!(head.name, "fn-000000");
    }
}
