//! # LaSS — Latency-Sensitive Serverless at the Edge
//!
//! Facade crate re-exporting the full LaSS reproduction
//! (Wang, Ali-Eldin, Shenoy — HPDC '21):
//!
//! * [`queueing`] — M/M/c capacity models, heterogeneous worst-case bounds,
//!   Algorithm 1 container solvers, rate estimators.
//! * [`simcore`] — deterministic discrete-event simulation substrate.
//! * [`cluster`] — edge-cluster runtime: nodes, containers, placement,
//!   in-place CPU resize (deflation mechanism), multi-site topologies.
//! * [`functions`] — the paper's function catalog (Table 1), deflation
//!   service-time models (Fig. 7), workload generators and Azure-like
//!   traces.
//! * [`core`] — the LaSS controller: model-driven autoscaling, weighted
//!   fair share, termination/deflation reclamation, the end-to-end
//!   simulation — plus the static-rr / knative policies and the
//!   federated multi-site harness.
//! * [`openwhisk`] — the vanilla OpenWhisk baseline scheduler (§6.6).
//!
//! The [`scenario`] module adds declarative JSON scenarios (including
//! federated `topology` blocks and fault-injecting `chaos` blocks) for
//! the `lass-sim` and `lass-sweep` binaries. See
//! `examples/quickstart.rs` for a five-minute tour.

pub mod replay;
pub mod scenario;

pub use lass_cluster as cluster;
pub use lass_core as core;
pub use lass_functions as functions;
pub use lass_openwhisk as openwhisk;
pub use lass_queueing as queueing;
pub use lass_simcore as simcore;
