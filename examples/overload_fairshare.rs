//! Fair share under overload: two tenants with different weights compete
//! for a saturated edge cluster; compare the termination and deflation
//! reclamation policies (§4 of the paper).
//!
//! ```sh
//! cargo run --example overload_fairshare
//! ```

use lass::cluster::{Cluster, UserId};
use lass::core::{FunctionSetup, LassConfig, ReclamationPolicy, Simulation};
use lass::functions::{binary_alert, image_resizer, WorkloadSpec};

fn run(policy: ReclamationPolicy) -> (f64, f64, f64) {
    let mut cfg = LassConfig::default();
    cfg.reclamation = policy;
    let mut sim = Simulation::new(cfg, Cluster::paper_testbed(), 11);

    // Tenant A (weight 1): malware scanning, heavy sustained load.
    let mut a = FunctionSetup::new(
        binary_alert(),
        0.1,
        WorkloadSpec::Static {
            rate: 300.0,
            duration: 600.0,
        },
    );
    a.user = UserId(0);
    a.user_weight = 1.0;
    let fa = sim.add_function(a);

    // Tenant B (weight 2, pays more): image resizing, also saturating.
    let mut b = FunctionSetup::new(
        image_resizer(),
        0.1,
        WorkloadSpec::Static {
            rate: 200.0,
            duration: 600.0,
        },
    );
    b.user = UserId(1);
    b.user_weight = 2.0;
    let fb = sim.add_function(b);

    let report = sim.run(None);
    let second_half = |id: u32| {
        report.per_fn[&id]
            .cpu_timeline
            .mean_between(300.0, 600.0)
            .unwrap_or(0.0)
    };
    (
        second_half(fa.0),
        second_half(fb.0),
        report.allocated_utilization,
    )
}

fn main() {
    println!("Two saturating tenants, weights 1 : 2, 12 vCPU cluster\n");
    println!("Guaranteed shares: tenant A = 4 vCPU (33%), tenant B = 8 vCPU (67%)\n");
    for policy in [ReclamationPolicy::Termination, ReclamationPolicy::Deflation] {
        let (a_cpu, b_cpu, util) = run(policy);
        println!("{policy:?}:");
        println!(
            "  tenant A steady-state allocation: {:.2} vCPU ({:.0}% of guarantee)",
            a_cpu / 1000.0,
            a_cpu / 4000.0 * 100.0
        );
        println!(
            "  tenant B steady-state allocation: {:.2} vCPU ({:.0}% of guarantee)",
            b_cpu / 1000.0,
            b_cpu / 8000.0 * 100.0
        );
        println!("  cluster utilization: {:.1}%\n", util * 100.0);
        // Weighted fairness: B should hold about twice A's capacity.
        let ratio = b_cpu / a_cpu.max(1.0);
        assert!(
            (1.5..=2.6).contains(&ratio),
            "{policy:?}: weighted shares off (ratio {ratio:.2})"
        );
    }
    println!("Both policies enforce the 1:2 weighted guarantee; deflation additionally");
    println!("fills fragments with partially-deflated containers (see the fig8 harness).");
}
