//! The paper's motivating scenario (§1, Example 1): motion-activated smart
//! cameras stream frame bursts to DNN-inference functions at the edge.
//!
//! Two camera feeds share the cluster: a MobileNet v2 pipeline for an HD
//! intersection camera and a SqueezeNet pipeline for a doorbell camera.
//! Motion events produce sporadic bursts (nothing between events), so a
//! persistent allocation would waste the scarce edge capacity — exactly
//! the case for serverless at the edge.
//!
//! ```sh
//! cargo run --example video_analytics
//! ```

use lass::cluster::{Cluster, UserId};
use lass::core::{FunctionSetup, LassConfig, Simulation};
use lass::functions::{mobilenet_v2, squeezenet, WorkloadSpec};

fn main() {
    let mut sim = Simulation::new(LassConfig::default(), Cluster::paper_testbed(), 7);

    // Intersection camera: 3 motion bursts of ~90 s at 5 frames/s.
    let mut intersection = FunctionSetup::new(
        mobilenet_v2(),
        0.25, // 250 ms waiting-time SLO for near-real-time alerts
        WorkloadSpec::Steps {
            steps: vec![
                (0.0, 0.0),
                (60.0, 5.0),
                (150.0, 0.0),
                (300.0, 5.0),
                (390.0, 0.0),
                (540.0, 5.0),
                (630.0, 0.0),
            ],
            duration: 720.0,
        },
    );
    intersection.user = UserId(0);
    let cam1 = sim.add_function(intersection);

    // Doorbell camera: shorter, more frequent bursts at 8 frames/s.
    let mut doorbell = FunctionSetup::new(
        squeezenet(),
        0.1,
        WorkloadSpec::Steps {
            steps: vec![
                (0.0, 0.0),
                (30.0, 8.0),
                (75.0, 0.0),
                (180.0, 8.0),
                (225.0, 0.0),
                (420.0, 8.0),
                (465.0, 0.0),
                (600.0, 8.0),
                (645.0, 0.0),
            ],
            duration: 720.0,
        },
    );
    doorbell.user = UserId(1);
    let cam2 = sim.add_function(doorbell);

    let mut report = sim.run(None);

    println!("Edge video analytics — two motion-triggered camera pipelines\n");
    for (label, id) in [
        ("intersection/MobileNet", cam1),
        ("doorbell/SqueezeNet", cam2),
    ] {
        let f = report.per_fn.get_mut(&id.0).expect("deployed");
        println!("{label}:");
        println!("  frames processed : {}", f.completed);
        println!(
            "  waiting time     : p95 {:.1} ms (SLO attainment {:.1}%)",
            f.wait.percentile(0.95).unwrap_or(0.0) * 1e3,
            f.slo_attainment() * 100.0
        );
        let peak = f
            .container_timeline
            .points()
            .iter()
            .map(|&(_, v)| v)
            .fold(0.0f64, f64::max);
        let idle_share = f
            .container_timeline
            .points()
            .iter()
            .filter(|&&(_, v)| v == 0.0)
            .count() as f64
            / f.container_timeline.len().max(1) as f64;
        println!(
            "  containers       : peak {peak:.0}, zero-allocation {:.0}% of epochs",
            idle_share * 100.0
        );
    }
    println!(
        "\ncluster average allocated utilization: {:.1}%  (bursty feeds -> capacity\n\
         is only held while motion events are being processed)",
        report.allocated_utilization * 100.0
    );
}
