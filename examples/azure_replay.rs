//! Replay Azure-Functions-style traces through a LaSS cluster.
//!
//! With no arguments, a synthetic six-function hour (statistically shaped
//! like the Azure Functions 2019 dataset) is generated. Pass a path to a
//! real `invocations_per_function_md.anon.d*.csv` file from the Azure
//! Public Dataset to replay actual production traces:
//!
//! ```sh
//! cargo run --example azure_replay [-- /path/to/invocations.csv]
//! ```

use lass::cluster::{Cluster, UserId};
use lass::core::{FunctionSetup, LassConfig, Simulation};
use lass::functions::{
    fig9_traces, parse_invocations_csv, sample_window, standard_catalog, WorkloadSpec,
};

fn main() {
    let minutes = 60;
    let traces: Vec<Vec<u64>> = match std::env::args().nth(1) {
        Some(path) => {
            let text =
                std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
            let rows = parse_invocations_csv(&text).expect("valid Azure CSV");
            println!("loaded {} trace rows from {path}", rows.len());
            // The paper samples 11:00-12:00 (minutes 660-720); take the six
            // busiest rows in that window.
            let mut windows: Vec<Vec<u64>> = rows
                .iter()
                .map(|r| sample_window(r, 660, minutes))
                .filter(|w| w.len() == minutes)
                .collect();
            windows.sort_by_key(|w| std::cmp::Reverse(w.iter().sum::<u64>()));
            windows.truncate(6);
            assert!(windows.len() == 6, "need at least six usable rows");
            windows
        }
        None => {
            println!("no CSV given: using the synthetic Azure-like hour (seed 42)");
            fig9_traces(42)
        }
    };

    let mut sim = Simulation::new(LassConfig::default(), Cluster::paper_testbed(), 42);
    let mut ids = Vec::new();
    for (i, spec) in standard_catalog().into_iter().enumerate() {
        let mut setup = FunctionSetup::new(
            spec,
            0.1,
            WorkloadSpec::Trace {
                per_minute: traces[i].clone(),
            },
        );
        setup.user = UserId((i % 2) as u32);
        setup.initial_containers = 1;
        ids.push(sim.add_function(setup));
    }
    let mut report = sim.run(None);

    println!(
        "\n{:>18}  {:>9} {:>9} {:>10} {:>8}",
        "function", "arrivals", "done", "p95W(ms)", "attain"
    );
    for id in ids {
        let f = report.per_fn.get_mut(&id.0).expect("deployed");
        println!(
            "{:>18}  {:>9} {:>9} {:>10.1} {:>8.3}",
            f.name,
            f.arrivals,
            f.completed,
            f.wait.percentile(0.95).unwrap_or(0.0) * 1e3,
            f.slo_attainment()
        );
    }
    println!(
        "\ncluster: {:.1}% allocated / {:.1}% busy utilization; {} of {} epochs overloaded",
        report.allocated_utilization * 100.0,
        report.busy_utilization * 100.0,
        report.overloaded_epochs,
        report.epochs
    );
}
