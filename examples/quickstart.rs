//! Quickstart: deploy one function on a simulated edge cluster, let the
//! LaSS controller autoscale it, and inspect the SLO report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use lass::cluster::Cluster;
use lass::core::{FunctionSetup, LassConfig, Simulation};
use lass::functions::{micro_benchmark, WorkloadSpec};

fn main() {
    // The paper's edge testbed: 3 nodes x 4 vCPU x 16 GiB.
    let cluster = Cluster::paper_testbed();

    // Controller defaults follow the paper: 10 s epochs, 5 s monitoring,
    // dual sliding windows, tau = 30% deflation, deflation reclamation.
    let cfg = LassConfig::default();

    let mut sim = Simulation::new(cfg, cluster, 42);

    // A 100 ms function (mu = 10 req/s per container) with a 100 ms SLO on
    // waiting time, driven by a load step 10 -> 40 -> 10 req/s.
    let fn_id = sim.add_function(FunctionSetup::new(
        micro_benchmark(0.1),
        0.1,
        WorkloadSpec::Steps {
            steps: vec![(0.0, 10.0), (120.0, 40.0), (300.0, 10.0)],
            duration: 420.0,
        },
    ));

    let mut report = sim.run(None);
    let f = report.per_fn.get_mut(&fn_id.0).expect("deployed function");

    println!("function        : {}", f.name);
    println!(
        "requests        : {} arrived, {} completed",
        f.arrivals, f.completed
    );
    println!(
        "waiting time    : mean {:.1} ms, p95 {:.1} ms, p99 {:.1} ms",
        f.wait.mean().unwrap_or(0.0) * 1e3,
        f.wait.percentile(0.95).unwrap_or(0.0) * 1e3,
        f.wait.percentile(0.99).unwrap_or(0.0) * 1e3,
    );
    println!(
        "SLO attainment  : {:.1}% of waits within 100 ms",
        f.slo_attainment() * 100.0
    );
    println!("container peaks :");
    let mut last = -1.0;
    for &(t, v) in f.container_timeline.points() {
        if v != last {
            println!("    t={:>5.0}s  containers={v:.0}", t);
            last = v;
        }
    }
    println!(
        "cluster         : {:.1}% average allocated utilization",
        report.allocated_utilization * 100.0
    );
    assert!(f.slo_attainment() > 0.9, "autoscaler should hold the SLO");
}
