//! Interactive use of the queueing models alone: a capacity planner that
//! answers "how many containers does this function need?" without running
//! any simulation (Algorithm 1 / §3 of the paper).
//!
//! ```sh
//! cargo run --example capacity_planner -- <lambda> <service_ms> <slo_ms> [deflated_frac deflated_pct]
//! # e.g. 50 req/s, 100 ms service time, 100 ms waiting SLO:
//! cargo run --example capacity_planner -- 50 100 100
//! # same, but 50% of the existing fleet is deflated by 30%:
//! cargo run --example capacity_planner -- 50 100 100 0.5 30
//! ```

use lass::queueing::{
    required_additional_containers, required_containers_exact, MmcQueue, SolverConfig,
};

fn main() {
    let args: Vec<f64> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("numeric argument"))
        .collect();
    let (lambda, service_ms, slo_ms) = match args.as_slice() {
        [l, s, d, ..] => (*l, *s, *d),
        _ => {
            eprintln!("usage: capacity_planner <lambda_rps> <service_ms> <slo_ms> [deflated_frac deflated_pct]");
            eprintln!("(no arguments given: using the demo values 50 req/s, 100 ms, 100 ms)");
            (50.0, 100.0, 100.0)
        }
    };
    let mu = 1000.0 / service_ms;
    let t = slo_ms / 1000.0;
    let cfg = SolverConfig {
        target_percentile: 0.99,
        max_containers: 100_000,
    };

    println!("workload        : λ = {lambda} req/s, μ = {mu:.2} req/s per container");
    println!("SLO             : P95 waiting time ≤ {slo_ms} ms (model driven to P99)");

    let res = required_containers_exact(lambda, mu, t, &cfg).expect("feasible SLO");
    println!(
        "homogeneous     : c = {} containers  (bound P(Q ≤ t) = {:.4}, {} iterations)",
        res.containers, res.achieved, res.iterations
    );
    let q = MmcQueue::new(lambda, mu, res.containers).expect("valid");
    println!(
        "  at that c     : utilization {:.1}%, mean wait {:.2} ms, P(wait>0) = {:.3}",
        q.utilization() * 100.0,
        q.mean_wait() * 1e3,
        q.erlang_c()
    );
    if res.containers > 1 {
        let q1 = MmcQueue::new(lambda, mu, res.containers - 1).expect("valid");
        println!(
            "  with c-1      : bound drops to {:.4} (why c is minimal)",
            q1.wait_probability_bound(t)
        );
    }

    if let [_, _, _, frac, pct] = args.as_slice() {
        // Heterogeneous what-if: some of the fleet is deflated.
        let n = res.containers as usize;
        let n_deflated = ((*frac) * n as f64).round() as usize;
        let mut fleet = vec![mu; n - n_deflated];
        fleet.extend(vec![mu * (1.0 - pct / 100.0); n_deflated]);
        let extra = required_additional_containers(lambda, &fleet, mu, t, &cfg).expect("feasible");
        println!(
            "heterogeneous   : with {n_deflated}/{n} containers deflated {pct}%, add {} standard containers",
            extra.containers
        );
    }
}
